"""Why-not answering via (k, α) refinement — the integrated framework.

The paper's conclusion sketches future work: an integrated framework
answering why-not questions "considering different parameters,
including the refinement of parameter α, the query keyword set, and
the location."  This module supplies the α axis, following the
preference-adjustment approach of the authors' earlier work (Chen et
al., ICDE 2015, reference [8]): keep the keywords fixed and adapt the
spatial/textual preference so the missing objects enter the result.

**Penalty.**  Mirroring Eqn 4's structure, a refined ``(k', α')`` pair
costs

``Penalty = λ·Δk/(R(M,q) − k₀) + (1−λ)·|α' − α₀| / max(α₀, 1 − α₀)``

— the Δk term is identical to keyword adaption's (so penalties from
the two refinement axes are commensurable inside
:class:`IntegratedAlgorithm`), and the α term is normalised by the
largest possible preference shift within ``(0, 1)``.

**Search.**  ``R(M, q_α)`` is piecewise constant in α, with
breakpoints where the missing object's score line crosses another
object's: ``ST_α(o) = α·s_o + (1−α)·t_o`` is linear in α.  Following
[8]'s sampling design, candidate α values are drawn from a uniform
grid over ``(0, 1)``, visited in ascending ``|α' − α₀|`` so the same
Eqn 6-style early stop and enumeration cut-off apply; each candidate's
rank is determined by the index search with the early-stop limit.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..errors import InvalidParameterError, ensure_not_none
from ..model.numeric import approx_zero
from ..index.kcr_tree import KcRTree
from ..index.rtree import RTreeBase
from ..index.setr_tree import SetRTree
from ..model.query import WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel
from .context import QuestionContext
from .kcr_algorithm import KcRAlgorithm
from .result import RefinedQuery, SearchCounters, WhyNotAnswer

__all__ = ["AlphaRefinementAlgorithm", "IntegratedAlgorithm"]


class AlphaRefinementAlgorithm:
    """Adapt ``α`` (and ``k``) so the missing objects are revived."""

    name = "AlphaRefine"

    def __init__(
        self,
        tree: RTreeBase,
        model: SimilarityModel = JACCARD,
        *,
        n_samples: int = 64,
    ) -> None:
        if n_samples < 1:
            raise InvalidParameterError(
                f"n_samples must be positive, got {n_samples}"
            )
        self.tree = tree
        self.model = model
        self.n_samples = n_samples

    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Best (k', α') refinement over the sampled preference grid."""
        started = time.perf_counter()
        io_before = self.tree.stats.snapshot()
        context = QuestionContext.prepare(question, self.tree, self.model)
        counters = SearchCounters()
        penalty_model = context.penalty_model
        query = context.query
        alpha0 = query.alpha
        alpha_norm = max(alpha0, 1.0 - alpha0)

        best = context.basic_refined()
        # Uniform grid over (0, 1), visited nearest-to-α₀ first so the
        # α-penalty is non-decreasing and licences early termination.
        step = 1.0 / (self.n_samples + 1)
        candidates = sorted(
            (step * i for i in range(1, self.n_samples + 1)),
            key=lambda a: abs(a - alpha0),
        )
        for alpha in candidates:
            counters.candidates_enumerated += 1
            alpha_pen = (1.0 - question.lam) * abs(alpha - alpha0) / alpha_norm
            if alpha_pen >= best.penalty:
                break  # sorted ascending in |α'−α₀|: nothing later improves
            stop_limit = self._max_useful_rank(
                penalty_model, best.penalty, alpha_pen
            )
            counters.candidates_evaluated += 1
            result = context.searcher.rank_of_missing(
                query.with_alpha(alpha), context.missing, stop_limit=stop_limit
            )
            if result.aborted:
                counters.aborted_early += 1
                continue
            rank = ensure_not_none(
                result.rank, "non-aborted rank search returned no rank"
            )
            penalty = penalty_model.k_penalty(rank) + alpha_pen
            if penalty < best.penalty:
                best = RefinedQuery(
                    keywords=query.doc,
                    k=penalty_model.refined_k(rank),
                    delta_doc=0,
                    rank=rank,
                    penalty=penalty,
                    alpha=alpha,
                )

        return WhyNotAnswer(
            refined=best,
            initial_rank=context.initial_rank,
            algorithm=self.name,
            elapsed_seconds=time.perf_counter() - started,
            io=self.tree.stats.snapshot() - io_before,
            counters=counters,
        )

    @staticmethod
    def _max_useful_rank(penalty_model, incumbent, fixed_pen) -> Optional[int]:
        """Largest rank still improving given a fixed non-k penalty.

        Same gallop/binary-search boundary as PenaltyModel's Eqn 6
        bound, with the α-penalty in place of the keyword penalty.
        """
        if fixed_pen >= incumbent:
            return None
        if approx_zero(penalty_model.lam):
            return 10**18
        lo = penalty_model.k0
        hi = lo + 1
        while penalty_model.k_penalty(hi) + fixed_pen < incumbent:
            hi = lo + 2 * (hi - lo) + 1
            if hi >= 10**15:
                return 10**18
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if penalty_model.k_penalty(mid) + fixed_pen < incumbent:
                lo = mid
            else:
                hi = mid
        return lo


class IntegratedAlgorithm:
    """The conclusion's integrated framework: refine keywords *or* α.

    Runs keyword adaption (KcRBased over the KcR-tree) and α-refinement
    (over either tree) on the same question and returns the answer with
    the smaller penalty.  The two penalties share the Δk term and
    normalise their second term to ``[0, 1]``, so the comparison is the
    natural one the conclusion implies.
    """

    name = "Integrated"

    def __init__(
        self,
        kcr_tree: KcRTree,
        model: SimilarityModel = JACCARD,
        *,
        n_samples: int = 64,
    ) -> None:
        self.keyword_algorithm = KcRAlgorithm(kcr_tree, model)
        self.alpha_algorithm = AlphaRefinementAlgorithm(
            kcr_tree, model, n_samples=n_samples
        )

    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Answer via both refinement axes; return the cheaper one."""
        started = time.perf_counter()
        keyword_answer = self.keyword_algorithm.answer(question)
        alpha_answer = self.alpha_algorithm.answer(question)
        winner = (
            keyword_answer
            if keyword_answer.refined.penalty <= alpha_answer.refined.penalty
            else alpha_answer
        )
        counters = SearchCounters()
        counters.merge(keyword_answer.counters)
        counters.merge(alpha_answer.counters)
        return WhyNotAnswer(
            refined=winner.refined,
            initial_rank=winner.initial_rank,
            algorithm=f"{self.name}({winner.algorithm})",
            elapsed_seconds=time.perf_counter() - started,
            io=keyword_answer.io + alpha_answer.io,
            counters=counters,
        )
