"""The Opt3 dominator cache (Section IV-C3).

Similar keyword sets rank objects similarly: an object that dominated
the missing object under a previously processed candidate has a good
chance of dominating it under the next one.  The cache accumulates the
dominators every processed search discovered and, before a new
candidate's spatial keyword query is issued, counts how many cached
objects *already* dominate the missing objects under the new keyword
set.  If that count reaches the candidate's Eqn 6 rank bound, the
candidate is pruned without touching the index at all — which is why
the paper finds this the most effective optimization (Fig 11).

Scoring cached objects is pure in-memory arithmetic on objects already
retrieved by earlier searches, so it charges no I/O — exactly the
paper's accounting.

Concurrency
-----------

The cache is the one piece of state the Fig 10 parallel workers share
*and* write.  All ingestion goes through :meth:`record_dominators`,
the single lock-guarded mutable surface the flow checker's
``worker-read-only`` contract sanctions (see DESIGN.md); reads snapshot
the accumulated entries under the same lock so a counting pass never
races a concurrent ingest.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..model.objects import Dataset, SpatialObject
from ..model.query import SpatialKeywordQuery
from ..model.similarity import SimilarityModel

__all__ = ["DominatorCache"]

KeywordSet = FrozenSet[int]


class DominatorCache:
    """Accumulates past dominators and counts survivors per candidate."""

    def __init__(
        self,
        dataset: Dataset,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        model: SimilarityModel,
    ) -> None:
        self.dataset = dataset
        self.query = query
        self.missing = tuple(missing)
        self.model = model
        self._lock = threading.Lock()
        # oid -> (1 - SDist(o, q)); the spatial half of the score never
        # changes across candidates, so it is cached per object.
        self._spatial: Dict[int, float] = {}
        self._docs: Dict[int, KeywordSet] = {}
        self._missing_spatial = [
            1.0 - dataset.normalized_distance(m.loc, query.loc) for m in self.missing
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def record_dominators(self, oids: Iterable[int]) -> None:
        """Record dominators discovered by a processed search.

        This is the sanctioned mutable surface for worker threads: the
        ingest runs under the cache lock, so concurrent workers may
        feed results as they finish.
        """
        with self._lock:
            self._ingest(oids)

    def add(self, oids: Iterable[int]) -> None:
        """Alias for :meth:`record_dominators` (kept for callers that
        predate the guarded surface)."""
        self.record_dominators(oids)

    def _ingest(self, oids: Iterable[int]) -> None:
        for oid in oids:
            if oid not in self._docs:
                obj = self.dataset.get(oid)
                self._docs[oid] = obj.doc
                self._spatial[oid] = 1.0 - self.dataset.normalized_distance(
                    obj.loc, self.query.loc
                )

    def count_dominating(self, keywords: KeywordSet, limit: int) -> int:
        """How many cached objects dominate the worst missing object
        under ``keywords``; stops counting at ``limit``.

        "Dominate" means scoring strictly above the *minimum* missing
        object score — the object that determines ``R(M, q')``.
        Entries are snapshotted under the lock, so the count is over a
        consistent prefix of what concurrent workers have ingested.
        """
        with self._lock:
            entries: List[Tuple[float, KeywordSet]] = [
                (self._spatial[oid], doc) for oid, doc in self._docs.items()
            ]
        alpha = self.query.alpha
        beta = 1.0 - alpha
        threshold = min(
            alpha * spatial + beta * self.model.similarity(m.doc, keywords)
            for spatial, m in zip(self._missing_spatial, self.missing)
        )
        count = 0
        for spatial, doc in entries:
            score = alpha * spatial + beta * self.model.similarity(doc, keywords)
            if score > threshold:
                count += 1
                if count >= limit:
                    return count
        return count
