"""Result types returned by the why-not algorithms.

Besides the refined query itself, results carry the fault-tolerance
verdict: :class:`FaultEvent` records one storage fault the engine
survived, and the ``degraded`` flag on :class:`WhyNotAnswer` /
:class:`TopKOutcome` marks answers produced by the index-free fallback
while an index is quarantined.  A degraded answer is still *exact*
(the fallback scans the authoritative in-memory dataset with the same
score arithmetic), but it no longer reflects the paper's I/O profile —
consumers comparing I/O metrics must skip flagged answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..data.vocabulary import Vocabulary
from ..model.query import SpatialKeywordQuery
from ..storage.stats import IOSnapshot

__all__ = [
    "RefinedQuery",
    "WhyNotAnswer",
    "SearchCounters",
    "FaultEvent",
    "TopKOutcome",
]

KeywordSet = FrozenSet[int]


@dataclass(frozen=True)
class RefinedQuery:
    """The answer to a why-not question: ``q' = (loc, doc', k', α')``.

    ``loc`` is always inherited from the initial query.  Keyword
    adaption (Definition 2) refines only ``doc`` and ``k`` and leaves
    ``alpha`` at ``None`` (= unchanged); the α-refinement extension
    leaves the keywords untouched and sets ``alpha`` instead.
    """

    keywords: KeywordSet
    k: int
    delta_doc: int
    rank: int  # R(M, q') under the refined keywords
    penalty: float
    alpha: Optional[float] = None  # None = keep the initial query's α

    def as_query(self, initial: SpatialKeywordQuery) -> SpatialKeywordQuery:
        """Materialise the refined query from the initial one."""
        refined = initial.with_keywords(self.keywords).with_k(self.k)
        if self.alpha is not None:
            refined = refined.with_alpha(self.alpha)
        return refined

    def describe(self, vocabulary: Optional[Vocabulary] = None) -> str:
        """Human-readable one-liner, decoding keywords when possible."""
        if vocabulary is not None:
            words = ", ".join(vocabulary.decode(self.keywords))
        else:
            words = ", ".join(str(t) for t in sorted(self.keywords))
        alpha_part = f" alpha={self.alpha:.3f}" if self.alpha is not None else ""
        return (
            f"refined query: keywords=[{words}] k={self.k}{alpha_part} "
            f"(Δdoc={self.delta_doc}, rank={self.rank}, "
            f"penalty={self.penalty:.4f})"
        )


@dataclass
class SearchCounters:
    """Algorithm-side work counters (I/O lives in :class:`IOSnapshot`).

    These feed the Fig 11 ablation analysis: how many candidates each
    optimization removed before (or during) query processing.
    """

    candidates_enumerated: int = 0
    candidates_evaluated: int = 0  # reached actual index search
    pruned_by_keyword_penalty: int = 0  # Opt2 / Alg 1 line 6-7
    pruned_by_cache: int = 0  # Opt3 / Alg 1 lines 10-13
    aborted_early: int = 0  # Opt1: searches stopped at the rank bound
    pruned_by_bounds: int = 0  # Alg 3 line 25-26
    nodes_expanded: int = 0  # Alg 3 queue pops

    def merge(self, other: "SearchCounters") -> None:
        """Accumulate another counter set (multi-phase algorithms)."""
        self.candidates_enumerated += other.candidates_enumerated
        self.candidates_evaluated += other.candidates_evaluated
        self.pruned_by_keyword_penalty += other.pruned_by_keyword_penalty
        self.pruned_by_cache += other.pruned_by_cache
        self.aborted_early += other.aborted_early
        self.pruned_by_bounds += other.pruned_by_bounds
        self.nodes_expanded += other.nodes_expanded


@dataclass(frozen=True)
class FaultEvent:
    """One storage fault the engine survived (and how).

    ``tree`` names the affected index (``"setr"`` / ``"kcr"``),
    ``operation`` the engine call that hit the fault, ``error`` the
    exception class name, ``record_id`` the damaged record when the
    error carried one, and ``detail`` the human-readable message.
    """

    tree: str
    operation: str
    error: str
    record_id: Optional[int]
    detail: str

    def format(self) -> str:
        """One-line rendering for health reports and the chaos verb."""
        rec = f" record={self.record_id}" if self.record_id is not None else ""
        return f"[{self.tree}] {self.operation}: {self.error}{rec} — {self.detail}"


@dataclass
class TopKOutcome:
    """A top-k result plus its fault-tolerance verdict.

    ``results`` holds the usual ``(score, oid)`` pairs, best first.
    ``degraded`` is True when the answer came from the index-free
    dataset scan because the SetR-tree was (or just became)
    quarantined; ``events`` then lists the faults that caused it.
    """

    results: List[Tuple[float, int]]
    degraded: bool = False
    events: Tuple[FaultEvent, ...] = ()


@dataclass
class WhyNotAnswer:
    """Full outcome of one why-not query.

    ``refined`` is the best refined query found; ``initial_rank`` is
    ``R(M, q)``; ``elapsed_seconds`` and ``io`` are the two metrics the
    paper's evaluation reports; ``counters`` carries the pruning
    telemetry; ``algorithm`` names the method that produced the answer.

    ``degraded`` marks an answer computed by the index-free fallback
    while the method's index was quarantined after an unrecoverable
    storage fault; ``fault_events`` then records the faults involved.
    Degraded answers carry a zero ``io`` snapshot — they must not be
    mixed into the paper's I/O metrics.
    """

    refined: RefinedQuery
    initial_rank: int
    algorithm: str
    elapsed_seconds: float
    io: IOSnapshot
    counters: SearchCounters = field(default_factory=SearchCounters)
    degraded: bool = False
    fault_events: Tuple[FaultEvent, ...] = ()

    @property
    def is_basic_refinement(self) -> bool:
        """True when no keyword edit beat simply enlarging ``k``."""
        return self.refined.delta_doc == 0
