"""Reverse keyword search for spatio-textual top-k queries.

The KcR-tree the paper builds on was introduced for *reverse keyword
search* (Lin, Xu & Hu, TKDE — the paper's reference [22]): given a
target object, a query location, and ``k``, find the query keyword
sets under which the target ranks in the top-``k``.  It is the
merchant question of Example 2 asked exhaustively — "*which* searches
find my restaurant?" — and the natural companion API to why-not
answering (why-not repairs one failing query; reverse search maps the
whole space of succeeding ones).

Candidates are the non-empty subsets of the target's own document (a
query containing a keyword the target lacks only dilutes its
similarity), optionally restricted by ``max_size`` or an explicit
pool.  Each candidate's rank is determined with the library's
rank-determination search using the Opt1-style early stop at ``k`` —
the search abandons a candidate the moment ``k`` dominators are seen,
since only rank ≤ k qualifies.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ..errors import InvalidParameterError, ensure_not_none
from ..index.rtree import RTreeBase
from ..index.search import TopKSearcher
from ..model.query import SpatialKeywordQuery
from ..model.similarity import JACCARD, SimilarityModel

__all__ = ["ReverseMatch", "ReverseKeywordSearch"]

KeywordSet = FrozenSet[int]


@dataclass(frozen=True)
class ReverseMatch:
    """One qualifying keyword set: the target ranks ``rank <= k``."""

    keywords: KeywordSet
    rank: int
    score: float  # the target's ST under this keyword set


@dataclass
class ReverseSearchReport:
    """Outcome of a reverse keyword search."""

    matches: Tuple[ReverseMatch, ...]
    candidates_examined: int
    aborted_early: int
    elapsed_seconds: float

    def best(self) -> Optional[ReverseMatch]:
        """The qualifying set with the best (lowest) rank, preferring
        smaller keyword sets on ties — the cheapest thing to advertise."""
        if not self.matches:
            return None
        return min(self.matches, key=lambda m: (m.rank, len(m.keywords)))


class ReverseKeywordSearch:
    """[22]-style reverse search over a SetR-tree or KcR-tree."""

    def __init__(self, tree: RTreeBase, model: SimilarityModel = JACCARD) -> None:
        self.tree = tree
        self.model = model
        self.searcher = TopKSearcher(tree, model)

    def search(
        self,
        target_oid: int,
        loc: Tuple[float, float],
        k: int,
        *,
        alpha: float = 0.5,
        max_size: Optional[int] = None,
        pool: Optional[Iterable[int]] = None,
    ) -> ReverseSearchReport:
        """Find every keyword set ranking the target in the top-``k``.

        ``pool`` restricts the candidate keywords (defaults to the
        target's own document); ``max_size`` caps candidate subset
        sizes.  Returns qualifying sets sorted best-rank-first.
        """
        started = time.perf_counter()
        target = self.tree.dataset.get(target_oid)
        keywords = frozenset(pool) if pool is not None else target.doc
        if not keywords:
            raise InvalidParameterError("the candidate keyword pool is empty")
        limit = max_size if max_size is not None else len(keywords)
        if limit < 1:
            raise InvalidParameterError(f"max_size must be >= 1, got {limit}")

        matches: List[ReverseMatch] = []
        examined = 0
        aborted = 0
        ordered = sorted(keywords)
        for size in range(1, min(limit, len(ordered)) + 1):
            for subset in itertools.combinations(ordered, size):
                examined += 1
                candidate = frozenset(subset)
                query = SpatialKeywordQuery(
                    loc=loc, doc=candidate, k=k, alpha=alpha
                )
                result = self.searcher.rank_of_missing(
                    query, [target], stop_limit=k
                )
                if result.aborted:
                    aborted += 1
                    continue  # rank > k: does not qualify
                rank = ensure_not_none(
                    result.rank, "non-aborted rank search returned no rank"
                )
                if rank <= k:
                    matches.append(
                        ReverseMatch(
                            keywords=candidate,
                            rank=rank,
                            score=self.searcher.score_object(
                                target, query, candidate
                            ),
                        )
                    )
        matches.sort(key=lambda m: (m.rank, len(m.keywords), sorted(m.keywords)))
        return ReverseSearchReport(
            matches=tuple(matches),
            candidates_examined=examined,
            aborted_early=aborted,
            elapsed_seconds=time.perf_counter() - started,
        )
