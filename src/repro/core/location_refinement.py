"""Why-not answering via query-location refinement.

The third axis of the paper's future-work sketch: "it is of interest
to investigate the refinement of query location in spatial keyword
top-k queries."  The user's location is often only approximately where
they will actually be (a hotel near *which* entrance of the venue?),
so moving ``q.loc`` slightly toward the missing objects can revive
them without touching keywords or ``k``.

**Penalty.**  Mirroring Eqn 4,

``Penalty = λ·Δk/(R(M,q) − k₀) + (1−λ)·SDist(loc', loc₀)``

— the location shift is already normalised (``SDist`` divides by the
dataset diagonal), and the Δk term stays commensurable with the other
refinement axes.

**Search.**  Candidate locations are sampled on the segments from the
original location toward each missing object (moving anywhere else
both costs distance *and* lowers the missing objects' scores), at
geometrically spaced fractions.  Candidates are visited in ascending
shift cost so the usual early-termination and Eqn 6-style rank bound
apply.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError, ensure_not_none
from ..index.rtree import RTreeBase
from ..model.geometry import Point
from ..model.query import WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel
from .alpha_refinement import AlphaRefinementAlgorithm
from .context import QuestionContext
from .result import RefinedQuery, SearchCounters, WhyNotAnswer

__all__ = ["LocationRefinementAlgorithm"]


class LocationRefinementAlgorithm:
    """Adapt ``loc`` (and ``k``) so the missing objects are revived."""

    name = "LocationRefine"

    def __init__(
        self,
        tree: RTreeBase,
        model: SimilarityModel = JACCARD,
        *,
        n_fractions: int = 12,
    ) -> None:
        if n_fractions < 1:
            raise InvalidParameterError(
                f"n_fractions must be positive, got {n_fractions}"
            )
        self.tree = tree
        self.model = model
        self.n_fractions = n_fractions

    def _candidate_locations(
        self, origin: Point, targets: Sequence[Point]
    ) -> List[Tuple[float, Point]]:
        """(shift-fraction, location) pairs toward each missing object.

        Fractions are geometric (1/2^j of the way) plus the full step —
        cheap shifts first, matching the ascending-cost visit order.
        """
        candidates: List[Tuple[float, Point]] = []
        fractions = sorted(
            {1.0 / (2**j) for j in range(self.n_fractions)} | {1.0}
        )
        for target in targets:
            dx = target[0] - origin[0]
            dy = target[1] - origin[1]
            for fraction in fractions:
                loc = (origin[0] + fraction * dx, origin[1] + fraction * dy)
                candidates.append((fraction, loc))
        return candidates

    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Best (k', loc') refinement over the sampled shift grid.

        The winning location rides on the returned answer as the
        ``refined_loc`` attribute (``None`` when the basic refinement
        wins)."""
        started = time.perf_counter()
        io_before = self.tree.stats.snapshot()
        context = QuestionContext.prepare(question, self.tree, self.model)
        counters = SearchCounters()
        penalty_model = context.penalty_model
        query = context.query
        dataset = self.tree.dataset

        best = context.basic_refined()
        best_loc: Optional[Point] = None
        candidates = self._candidate_locations(
            query.loc, [m.loc for m in context.missing]
        )
        # ascending shift cost = ascending normalised distance
        scored = sorted(
            (
                (dataset.normalized_distance(loc, query.loc), loc)
                for _, loc in candidates
            ),
            key=lambda pair: pair[0],
        )
        for shift, loc in scored:
            counters.candidates_enumerated += 1
            loc_pen = (1.0 - question.lam) * shift
            if loc_pen >= best.penalty:
                break  # ascending cost: no later candidate improves
            stop_limit = AlphaRefinementAlgorithm._max_useful_rank(
                penalty_model, best.penalty, loc_pen
            )
            counters.candidates_evaluated += 1
            moved = type(query)(
                loc=loc, doc=query.doc, k=query.k, alpha=query.alpha
            )
            result = context.searcher.rank_of_missing(
                moved, context.missing, stop_limit=stop_limit
            )
            if result.aborted:
                counters.aborted_early += 1
                continue
            rank = ensure_not_none(
                result.rank, "non-aborted rank search returned no rank"
            )
            penalty = penalty_model.k_penalty(rank) + loc_pen
            if penalty < best.penalty:
                best = RefinedQuery(
                    keywords=query.doc,
                    k=penalty_model.refined_k(rank),
                    delta_doc=0,
                    rank=rank,
                    penalty=penalty,
                )
                best_loc = loc

        answer = WhyNotAnswer(
            refined=best,
            initial_rank=context.initial_rank,
            algorithm=self.name,
            elapsed_seconds=time.perf_counter() - started,
            io=self.tree.stats.snapshot() - io_before,
            counters=counters,
        )
        # The refined location rides along as an answer attribute: the
        # RefinedQuery dataclass models the paper's (doc', k', α')
        # axes, and the location axis is this module's extension.
        answer.refined_loc = best_loc  # type: ignore[attr-defined]
        return answer
