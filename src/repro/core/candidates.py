"""Candidate keyword-set enumeration.

The refined keyword set ``doc'`` is obtained from ``doc₀`` by inserting
keywords from ``M.doc − doc₀`` and deleting keywords of ``doc₀``
(Sections IV-B/C and VI-A: keywords outside ``M.doc`` would only make
the query less relevant to the missing objects).  The full candidate
space therefore has ``2^|doc₀ ∪ M.doc|`` members.

This module provides the three access patterns the algorithms need:

* **naive order** for the basic algorithm — plain subset enumeration;
* **paper order** for AdvancedBS (Opt2) — ascending edit distance,
  ties broken by descending net particularity gain;
* **distance batches** for Algorithm 4 — all candidates at one edit
  distance;
* **top-T by gain** for the approximate algorithm — the T candidates
  with the highest total particularity, generated lazily with a
  best-first walk over the edit lattice (no full enumeration), since
  the approximate algorithm exists precisely for spaces too large to
  enumerate.

The empty keyword set is excluded everywhere: Jaccard similarity to an
empty query is 0 for every object, so it can never be a best refinement
and the paper's candidate space implicitly omits it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..model.numeric import quantize
from .particularity import ParticularityIndex

__all__ = ["Candidate", "CandidateEnumerator"]

KeywordSet = FrozenSet[int]


@dataclass(frozen=True)
class Candidate:
    """One refined keyword set with its edit script.

    ``delta_doc = |added| + |removed|`` is the Eqn 4 edit distance;
    ``gain`` is the net particularity of the edit script (only
    populated when an ordering that needs it produced the candidate).
    """

    keywords: KeywordSet
    added: KeywordSet
    removed: KeywordSet
    gain: float = 0.0

    @property
    def delta_doc(self) -> int:
        return len(self.added) + len(self.removed)


class CandidateEnumerator:
    """Enumerates refined keyword sets for one why-not question."""

    def __init__(
        self,
        doc0: KeywordSet,
        missing_doc: KeywordSet,
        particularity: Optional[ParticularityIndex] = None,
    ) -> None:
        self.doc0 = frozenset(doc0)
        self.missing_doc = frozenset(missing_doc)
        self.addable: Tuple[int, ...] = tuple(sorted(self.missing_doc - self.doc0))
        self.removable: Tuple[int, ...] = tuple(sorted(self.doc0))
        self.particularity = particularity

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def universe_size(self) -> int:
        """``|doc₀ ∪ M.doc|`` — the Δdoc normaliser of Eqn 4."""
        return len(self.doc0 | self.missing_doc)

    @property
    def edit_universe(self) -> int:
        """Number of independent edits = ``|addable| + |removable|``."""
        return len(self.addable) + len(self.removable)

    def total_candidates(self) -> int:
        """Size of the full space: ``2^edits`` minus the identity edit
        and minus the delete-everything-add-nothing script, which
        yields the excluded empty keyword set (whenever ``doc₀`` is
        non-empty)."""
        total = 2 ** self.edit_universe - 1  # exclude the identity edit
        if self.removable:
            total -= 1  # remove all of doc0, add nothing -> empty set
        return total

    # ------------------------------------------------------------------
    # construction helper
    # ------------------------------------------------------------------
    def _make(
        self, added: Sequence[int], removed: Sequence[int], with_gain: bool
    ) -> Optional[Candidate]:
        added_set = frozenset(added)
        removed_set = frozenset(removed)
        if not added_set and not removed_set:
            return None  # identity: the basic refined query covers it
        keywords = (self.doc0 - removed_set) | added_set
        if not keywords:
            return None  # empty keyword set excluded
        gain = 0.0
        if with_gain and self.particularity is not None:
            gain = self.particularity.edit_gain(added_set, removed_set)
        return Candidate(
            keywords=keywords, added=added_set, removed=removed_set, gain=gain
        )

    # ------------------------------------------------------------------
    # orders
    # ------------------------------------------------------------------
    def iter_naive(self) -> Iterator[Candidate]:
        """Plain subset enumeration (the basic algorithm's order)."""
        for add_mask in range(2 ** len(self.addable)):
            added = [
                t for i, t in enumerate(self.addable) if add_mask >> i & 1
            ]
            for del_mask in range(2 ** len(self.removable)):
                removed = [
                    t for i, t in enumerate(self.removable) if del_mask >> i & 1
                ]
                candidate = self._make(added, removed, with_gain=False)
                if candidate is not None:
                    yield candidate

    def at_distance(self, distance: int, with_gain: bool = True) -> List[Candidate]:
        """All candidates with ``Δdoc == distance`` (Algorithm 4 batches),
        sorted by descending particularity gain when an index is set."""
        candidates: List[Candidate] = []
        for n_added in range(min(distance, len(self.addable)) + 1):
            n_removed = distance - n_added
            if n_removed > len(self.removable):
                continue
            for added in itertools.combinations(self.addable, n_added):
                for removed in itertools.combinations(self.removable, n_removed):
                    candidate = self._make(added, removed, with_gain)
                    if candidate is not None:
                        candidates.append(candidate)
        if self.particularity is not None and with_gain:
            # Gains are float sums whose low bits depend on evaluation
            # order; quantizing the sort key keeps the enumeration order
            # identical between the scalar and vectorized gain paths
            # (ulp-close gains fall through to the keyword tie-break).
            candidates.sort(key=lambda c: (-quantize(c.gain), sorted(c.keywords)))
        return candidates

    def iter_paper_order(self) -> Iterator[Candidate]:
        """Opt2 order: ascending Δdoc, ties by descending gain."""
        for distance in range(1, self.edit_universe + 1):
            for candidate in self.at_distance(distance):
                yield candidate

    # ------------------------------------------------------------------
    # approximate sampling (Section VI-B)
    # ------------------------------------------------------------------
    def top_by_gain(self, sample_size: int) -> List[Candidate]:
        """The ``T`` candidates with the highest net particularity gain.

        Best-first walk over the edit lattice.  Every edit is an item
        with a signed gain; the best candidate applies exactly the
        positive-gain edits, and every other candidate differs by a set
        of "flips" whose costs are the edits' absolute gains.  The walk
        enumerates flip sets in ascending total cost with the classic
        k-smallest-subset heap, so generating ``T`` samples costs
        ``O(T log T)`` regardless of the ``2^edits`` space size.
        """
        if sample_size <= 0:
            raise ValueError(f"sample size must be positive, got {sample_size}")
        if self.particularity is None:
            raise ValueError("top_by_gain requires a particularity index")

        edits: List[Tuple[float, str, int]] = []
        for term in self.addable:
            edits.append((self.particularity.parti_missing(term), "add", term))
        for term in self.removable:
            edits.append((-self.particularity.parti_missing(term), "del", term))

        base_applied = [e for e in edits if e[0] > 0]
        # Quantized flip costs for the same reason as the at_distance
        # sort: ulp-close costs must order by the (kind, term) key.
        flips = sorted(
            (quantize(abs(gain)), kind, term) for gain, kind, term in edits
        )

        def realise(flip_indexes: Tuple[int, ...]) -> Optional[Candidate]:
            applied = {(kind, term) for _, kind, term in base_applied}
            for index in flip_indexes:
                _, kind, term = flips[index]
                edit = (kind, term)
                if edit in applied:
                    applied.remove(edit)
                else:
                    applied.add(edit)
            added = [term for kind, term in applied if kind == "add"]
            removed = [term for kind, term in applied if kind == "del"]
            return self._make(added, removed, with_gain=True)

        results: List[Candidate] = []
        seen_keywords: set = set()

        def emit(flip_indexes: Tuple[int, ...]) -> None:
            candidate = realise(flip_indexes)
            if candidate is not None and candidate.keywords not in seen_keywords:
                seen_keywords.add(candidate.keywords)
                results.append(candidate)

        emit(())
        if flips:
            heap: List[Tuple[float, Tuple[int, ...]]] = [(flips[0][0], (0,))]
            while heap and len(results) < sample_size:
                cost, indexes = heapq.heappop(heap)
                emit(indexes)
                last = indexes[-1]
                if last + 1 < len(flips):
                    # extend: add the next flip
                    heapq.heappush(
                        heap, (cost + flips[last + 1][0], indexes + (last + 1,))
                    )
                    # substitute: replace the last flip with the next
                    heapq.heappush(
                        heap,
                        (cost - flips[last][0] + flips[last + 1][0],
                         indexes[:-1] + (last + 1,)),
                    )
        return results[:sample_size]
