"""Index-free exact fallback for quarantined indexes.

When an unrecoverable storage fault (checksum mismatch, lost record)
surfaces mid-query, the engine quarantines the damaged index and routes
queries through :class:`ScanFallback` instead of crashing.  The
fallback evaluates queries directly over the authoritative in-memory
dataset — the tree never owns object data, so a broken index loses no
information, only the paper's I/O profile.

Correctness contract: the fallback uses *bit-identical* score
arithmetic to :class:`~repro.index.search.TopKSearcher`
(``α·(1−dist) + (1−α)·similarity``, evaluated in the same operation
order) and the same object-id tie-break, so a degraded top-k result
equals the fault-free index result exactly, and a degraded why-not
answer reaches the same optimal refined query as BS would.  The
``degraded`` flag exists because the *cost* semantics differ (no index
I/O is charged), not because the answers do.
"""

from __future__ import annotations

import time
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MissingObjectError
from ..model.objects import Dataset, SpatialObject
from ..model.query import SpatialKeywordQuery, WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel
from ..storage.stats import IOSnapshot
from .candidates import CandidateEnumerator
from .particularity import ParticularityIndex
from .penalty import PenaltyModel
from .result import RefinedQuery, SearchCounters, WhyNotAnswer

__all__ = ["ScanFallback"]

KeywordSet = FrozenSet[int]


class ScanFallback:
    """Exact query evaluation by scanning the in-memory dataset.

    When ``REPRO_VECTORIZE`` is on (``vectorize=None`` follows the
    environment) the scan packs the dataset into one columnar block and
    scores it with the shared batched kernels — bit-identical to the
    scalar loop per the :mod:`repro.core.vectorized` parity contract,
    so the degraded-path answers are unchanged either way.
    """

    name = "degraded-scan"

    def __init__(
        self,
        dataset: Dataset,
        model: SimilarityModel = JACCARD,
        *,
        vectorize: Optional[bool] = None,
    ) -> None:
        from .vectorized import vectorize_enabled

        self.dataset = dataset
        self.model = model
        self.vectorize = vectorize_enabled(vectorize)

    # ------------------------------------------------------------------
    # scoring (mirrors TopKSearcher._object_score exactly)
    # ------------------------------------------------------------------
    def score(
        self,
        obj: SpatialObject,
        query: SpatialKeywordQuery,
        keywords: Optional[KeywordSet] = None,
    ) -> float:
        """Exact Eqn 1 score — same arithmetic as the index searcher."""
        doc = query.doc if keywords is None else keywords
        dist = self.dataset.normalized_distance(obj.loc, query.loc)
        textual = self.model.similarity(obj.doc, doc)
        return query.alpha * (1.0 - dist) + (1.0 - query.alpha) * textual

    # ------------------------------------------------------------------
    # vectorized scan substrate
    # ------------------------------------------------------------------
    def _table(self) -> Optional[Tuple[Any, Any]]:
        """A ``(vocab, packed)`` columnar snapshot of the dataset.

        ``None`` when vectorization is off or the dataset is empty;
        callers fall back to the scalar scan.  Built fresh per public
        call (and once per :meth:`answer` sweep) so dataset mutations
        between calls are always reflected.
        """
        if not self.vectorize or not len(self.dataset):
            return None
        from .vectorized import PackedLeaf, VocabularyIndex

        vocab = VocabularyIndex.from_dataset(self.dataset)
        return vocab, PackedLeaf.of_dataset(self.dataset, vocab)

    def _scan_scores(
        self,
        table: Tuple[Any, Any],
        query: SpatialKeywordQuery,
        keywords: KeywordSet,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched Eqn 1 scores (and oids) for the whole dataset."""
        from .vectorized import leaf_scores

        vocab, packed = table
        scores = np.array(
            leaf_scores(
                packed,
                query.loc,
                query.alpha,
                vocab.encode(keywords),
                len(keywords),
                self.model.name,
                self.dataset,
            ),
            dtype=np.float64,
        )
        return scores, packed.oids

    def _rank(
        self,
        table: Optional[Tuple[Any, Any]],
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        keywords: KeywordSet,
    ) -> int:
        threshold = min(self.score(m, query, keywords) for m in missing)
        if table is not None:
            scores, _ = self._scan_scores(table, query, keywords)
            dominators = int(np.count_nonzero(scores > threshold))
        else:
            dominators = sum(
                1
                for obj in self.dataset
                if self.score(obj, query, keywords) > threshold
            )
        return dominators + 1

    # ------------------------------------------------------------------
    # query evaluation
    # ------------------------------------------------------------------
    def top_k(
        self,
        query: SpatialKeywordQuery,
        k: Optional[int] = None,
        keywords: Optional[KeywordSet] = None,
    ) -> List[Tuple[float, int]]:
        """The ``k`` best ``(score, oid)`` pairs, best first.

        Ties break by object id, matching
        :meth:`repro.index.search.TopKSearcher.top_k`.
        """
        limit = query.k if k is None else k
        doc = query.doc if keywords is None else keywords
        table = self._table()
        if table is not None:
            scores, oids = self._scan_scores(table, query, doc)
            # lexsort keys ascend, last key is primary: score desc, oid asc
            order = np.lexsort((oids, -scores))[:limit]
            return list(zip(scores[order].tolist(), oids[order].tolist()))
        scored = sorted(
            ((self.score(obj, query, doc), obj.oid) for obj in self.dataset),
            key=lambda pair: (-pair[0], pair[1]),
        )
        return scored[:limit]

    def rank_of_missing(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        keywords: Optional[KeywordSet] = None,
    ) -> int:
        """``R(M, q')``: one plus the strictly-better object count."""
        doc = query.doc if keywords is None else keywords
        return self._rank(self._table(), query, missing, doc)

    # ------------------------------------------------------------------
    # why-not answering (BS semantics over the scan)
    # ------------------------------------------------------------------
    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Answer a why-not question with the BS candidate sweep.

        Same prologue, candidate enumeration order, and penalty model
        as :class:`~repro.core.basic.BasicAlgorithm`, so the optimal
        refined query is identical to the fault-free one; only the cost
        profile differs (no index I/O is charged).
        """
        started = time.perf_counter()
        query = question.query
        missing = tuple(self.dataset.get(oid) for oid in question.missing)
        table = self._table()  # one packed snapshot for the whole sweep
        initial_rank = self._rank(table, query, missing, query.doc)
        if initial_rank <= query.k:
            raise MissingObjectError(
                f"missing objects already rank {initial_rank} <= k={query.k} "
                "under the initial query; nothing to explain"
            )
        missing_doc = frozenset().union(*(m.doc for m in missing))
        particularity = ParticularityIndex(self.dataset, missing)
        enumerator = CandidateEnumerator(
            query.doc, missing_doc, particularity=particularity
        )
        penalty_model = PenaltyModel(
            k0=query.k,
            initial_rank=initial_rank,
            doc_universe_size=len(query.doc | missing_doc),
            lam=question.lam,
        )
        counters = SearchCounters()
        best = RefinedQuery(
            keywords=query.doc,
            k=initial_rank,
            delta_doc=0,
            rank=initial_rank,
            penalty=penalty_model.basic_penalty,
        )
        for candidate in enumerator.iter_naive():
            counters.candidates_enumerated += 1
            counters.candidates_evaluated += 1
            rank = self._rank(table, query, missing, candidate.keywords)
            penalty = penalty_model.penalty(candidate.delta_doc, rank)
            if penalty < best.penalty:
                best = RefinedQuery(
                    keywords=candidate.keywords,
                    k=penalty_model.refined_k(rank),
                    delta_doc=candidate.delta_doc,
                    rank=rank,
                    penalty=penalty,
                )
        return WhyNotAnswer(
            refined=best,
            initial_rank=initial_rank,
            algorithm=self.name,
            elapsed_seconds=time.perf_counter() - started,
            io=IOSnapshot(0, 0, 0, 0),
            counters=counters,
            degraded=True,
        )
