"""The optimized basic algorithm (**AdvancedBS**, Algorithm 1).

Adds the three Section IV-C optimizations on top of BS, each
independently switchable so the Fig 11 ablation can isolate them:

* **Opt1 — early stop.**  Eqn 6 turns the incumbent penalty into the
  largest rank a candidate could reach while still improving; the
  per-candidate index search aborts once that many dominators are seen.
* **Opt2 — enumeration order.**  Candidates ascend by edit distance
  with ties broken by descending particularity gain (Eqn 7), which
  finds small penalties early *and* licenses terminating the whole
  enumeration once the keyword penalty alone reaches the incumbent
  (Algorithm 1 lines 6–7).
* **Opt3 — keyword set filtering.**  Dominators discovered by earlier
  searches are cached; if enough of them already dominate under a new
  candidate, the candidate is pruned without any index access
  (Algorithm 1 lines 10–13).

Opt4 (parallel processing) lives in :mod:`repro.core.parallel`.
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import ensure_not_none
from ..index.setr_tree import SetRTree
from ..model.query import WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel
from .context import QuestionContext
from .dominator_cache import DominatorCache
from .result import RefinedQuery, SearchCounters, WhyNotAnswer

__all__ = ["AdvancedAlgorithm"]


class AdvancedAlgorithm:
    """AdvancedBS: Algorithm 1 with switchable optimizations."""

    def __init__(
        self,
        tree: SetRTree,
        model: SimilarityModel = JACCARD,
        *,
        early_stop: bool = True,
        ordering: bool = True,
        filtering: bool = True,
        cache: Optional[DominatorCache] = None,
    ) -> None:
        self.tree = tree
        self.model = model
        self.early_stop = early_stop
        self.ordering = ordering
        self.filtering = filtering
        # An externally owned Opt3 cache (the serving layer shares one
        # across a refinement dialogue).  Only valid while the caller
        # guarantees the cache was built for this question's
        # (query.loc, query.alpha, missing) triple — dominance does not
        # depend on the candidate keyword sets, so k/λ/keyword changes
        # within a dialogue are safe to share.
        self.cache = cache

    @property
    def name(self) -> str:
        if self.early_stop and self.ordering and self.filtering:
            return "AdvancedBS"
        tags = [
            tag
            for enabled, tag in (
                (self.early_stop, "Opt1"),
                (self.ordering, "Opt2"),
                (self.filtering, "Opt3"),
            )
            if enabled
        ]
        return "BS+" + "+".join(tags) if tags else "BS"

    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Return the best refined query for ``question``."""
        started = time.perf_counter()
        io_before = self.tree.stats.snapshot()
        context = QuestionContext.prepare(question, self.tree, self.model)
        counters = SearchCounters()
        penalty_model = context.penalty_model

        best = context.basic_refined()
        cache: Optional[DominatorCache] = None
        if self.filtering:
            cache = self.cache
            if cache is None:
                cache = DominatorCache(
                    context.dataset, context.query, context.missing, self.model
                )

        candidates = (
            context.enumerator.iter_paper_order()
            if self.ordering
            else context.enumerator.iter_naive()
        )
        for candidate in candidates:
            counters.candidates_enumerated += 1

            # Algorithm 1 lines 6-7: the keyword penalty alone already
            # matches the incumbent.  Under the paper order Δdoc is
            # non-decreasing, so no later candidate can recover: stop
            # the enumeration.  Under the naive order just skip.
            if penalty_model.keyword_penalty(candidate.delta_doc) >= best.penalty:
                counters.pruned_by_keyword_penalty += 1
                if self.ordering:
                    break
                continue

            stop_limit = penalty_model.max_useful_rank(
                best.penalty, candidate.delta_doc
            )
            # The keyword-penalty prune above guarantees a finite bound.
            stop_limit = ensure_not_none(
                stop_limit, "Eqn 6 bound missing after keyword-penalty prune"
            )

            # Opt3: count cached dominators that survive the keyword
            # change; if the rank bound is already unreachable, prune
            # without touching the index (Algorithm 1 lines 10-13).
            if cache is not None:
                survivors = cache.count_dominating(candidate.keywords, stop_limit)
                if survivors >= stop_limit:
                    counters.pruned_by_cache += 1
                    continue

            counters.candidates_evaluated += 1
            result = context.searcher.rank_of_missing(
                context.query,
                context.missing,
                keywords=candidate.keywords,
                stop_limit=stop_limit if self.early_stop else None,
            )
            if cache is not None:
                cache.record_dominators(result.dominators)
            if result.aborted:
                counters.aborted_early += 1
                continue
            rank = ensure_not_none(
                result.rank, "non-aborted rank search returned no rank"
            )
            penalty = penalty_model.penalty(candidate.delta_doc, rank)
            if penalty < best.penalty:
                best = RefinedQuery(
                    keywords=candidate.keywords,
                    k=penalty_model.refined_k(rank),
                    delta_doc=candidate.delta_doc,
                    rank=rank,
                    penalty=penalty,
                )

        return WhyNotAnswer(
            refined=best,
            initial_rank=context.initial_rank,
            algorithm=self.name,
            elapsed_seconds=time.perf_counter() - started,
            io=self.tree.stats.snapshot() - io_before,
            counters=counters,
        )
