"""The basic why-not algorithm (**BS**, Section IV-B).

For every candidate keyword set, issue a spatial keyword query against
the SetR-tree and run it until the missing objects' rank is known, then
score the candidate with Eqn 4.  No early stop, no smart ordering, no
caching: this is the paper's baseline, deliberately kept naive so the
optimizations of Section IV-C have something to beat.
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import ensure_not_none
from ..index.setr_tree import SetRTree
from ..model.query import WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel
from .context import QuestionContext
from .result import RefinedQuery, SearchCounters, WhyNotAnswer

__all__ = ["BasicAlgorithm"]


class BasicAlgorithm:
    """BS: exhaustive candidate evaluation over the SetR-tree."""

    name = "BS"

    def __init__(self, tree: SetRTree, model: SimilarityModel = JACCARD) -> None:
        self.tree = tree
        self.model = model

    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Return the best refined query for ``question``."""
        started = time.perf_counter()
        io_before = self.tree.stats.snapshot()
        context = QuestionContext.prepare(question, self.tree, self.model)
        counters = SearchCounters()

        best = context.basic_refined()
        penalty_model = context.penalty_model
        for candidate in context.enumerator.iter_naive():
            counters.candidates_enumerated += 1
            counters.candidates_evaluated += 1
            result = context.searcher.rank_of_missing(
                context.query, context.missing, keywords=candidate.keywords
            )
            # BS never sets a stop limit, so a rank always exists.
            rank = ensure_not_none(result.rank, "unlimited rank search returned no rank")
            penalty = penalty_model.penalty(candidate.delta_doc, rank)
            if penalty < best.penalty:
                best = RefinedQuery(
                    keywords=candidate.keywords,
                    k=penalty_model.refined_k(rank),
                    delta_doc=candidate.delta_doc,
                    rank=rank,
                    penalty=penalty,
                )

        return WhyNotAnswer(
            refined=best,
            initial_rank=context.initial_rank,
            algorithm=self.name,
            elapsed_seconds=time.perf_counter() - started,
            io=self.tree.stats.snapshot() - io_before,
            counters=counters,
        )
