"""Shared per-question context.

Every why-not algorithm starts the same way: resolve the missing
objects, determine their rank under the initial query (``R(M, q)``),
build the penalty model, and set up candidate enumeration.  This
module factors that prologue so BS, AdvancedBS, KcRBased and the
approximate algorithm share identical semantics for the pieces the
paper holds fixed across algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple

from ..errors import MissingObjectError, ensure_not_none
from ..index.rtree import RTreeBase
from ..index.search import TopKSearcher
from ..model.objects import Dataset, SpatialObject
from ..model.query import SpatialKeywordQuery, WhyNotQuestion
from ..model.similarity import SimilarityModel
from .candidates import CandidateEnumerator
from .particularity import ParticularityIndex
from .penalty import PenaltyModel
from .result import RefinedQuery

__all__ = ["QuestionContext"]

KeywordSet = FrozenSet[int]


@dataclass
class QuestionContext:
    """Everything the algorithms need about one why-not question."""

    question: WhyNotQuestion
    dataset: Dataset
    #: A :class:`TopKSearcher` for plain trees; a tree that provides its
    #: own search backend (``searcher_for(model)``, e.g. the sharded
    #: index views) supplies that instead — same surface, same scores.
    searcher: Any
    missing: Tuple[SpatialObject, ...]
    initial_rank: int  # R(M, q)
    penalty_model: PenaltyModel
    particularity: ParticularityIndex
    enumerator: CandidateEnumerator

    @classmethod
    def prepare(
        cls,
        question: WhyNotQuestion,
        tree: RTreeBase,
        model: SimilarityModel,
    ) -> "QuestionContext":
        """Resolve and validate a question against a dataset and index.

        Computes ``R(M, q)`` with the index's rank-determination search
        ("by slightly modifying the underlying spatial-keyword top-k
        algorithm, changing the stop condition to retrieving the
        missing object" — Section V-D), so the initial rank shows up in
        the I/O accounting just as in the paper.
        """
        dataset = tree.dataset
        query = question.query
        missing = tuple(dataset.get(oid) for oid in question.missing)
        searcher_factory = getattr(tree, "searcher_for", None)
        if searcher_factory is not None:
            # Sharded index views dispatch rank searches across their
            # shards; the merged result is bit-identical to a single
            # tree's, so every algorithm above this line is unchanged.
            searcher = searcher_factory(model)
        else:
            searcher = TopKSearcher(tree, model)
        rank_result = searcher.rank_of_missing(query, missing)
        # No stop limit was set, so a rank always exists.
        initial_rank = ensure_not_none(
            rank_result.rank, "unlimited rank search returned no rank"
        )
        if initial_rank <= query.k:
            raise MissingObjectError(
                f"missing objects already rank {initial_rank} <= k={query.k} "
                "under the initial query; nothing to explain"
            )
        missing_doc = frozenset().union(*(m.doc for m in missing))
        particularity = ParticularityIndex(dataset, missing)
        enumerator = CandidateEnumerator(
            query.doc, missing_doc, particularity=particularity
        )
        penalty_model = PenaltyModel(
            k0=query.k,
            initial_rank=initial_rank,
            doc_universe_size=len(query.doc | missing_doc),
            lam=question.lam,
        )
        return cls(
            question=question,
            dataset=dataset,
            searcher=searcher,
            missing=missing,
            initial_rank=initial_rank,
            penalty_model=penalty_model,
            particularity=particularity,
            enumerator=enumerator,
        )

    @property
    def query(self) -> SpatialKeywordQuery:
        return self.question.query

    def basic_refined(self) -> RefinedQuery:
        """The basic refined query: keep ``doc₀``, enlarge ``k`` to
        ``R(M, q)``.  Penalty is exactly ``λ`` (Section IV-C1)."""
        return RefinedQuery(
            keywords=self.query.doc,
            k=self.initial_rank,
            delta_doc=0,
            rank=self.initial_rank,
            penalty=self.penalty_model.basic_penalty,
        )
