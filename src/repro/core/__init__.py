"""The paper's contribution: keyword-adapted why-not query answering."""

from .advanced import AdvancedAlgorithm
from .alpha_refinement import AlphaRefinementAlgorithm, IntegratedAlgorithm
from .approximate import ApproximateAlgorithm
from .basic import BasicAlgorithm
from .bounds import DominationThresholds, NodeTextStats, max_dom, min_dom
from .candidates import Candidate, CandidateEnumerator
from .context import QuestionContext
from .degraded import ScanFallback
from .dominator_cache import DominatorCache
from .engine import METHODS, WhyNotEngine
from .explain import Blocker, MissingProfile, WhyNotExplanation, explain
from .kcr_algorithm import KcRAlgorithm
from .location_refinement import LocationRefinementAlgorithm
from .parallel import ParallelAdvanced, ParallelKcR, makespan
from .particularity import ParticularityIndex
from .penalty import PenaltyModel
from .result import (
    FaultEvent,
    RefinedQuery,
    SearchCounters,
    TopKOutcome,
    WhyNotAnswer,
)
from .reverse import ReverseKeywordSearch, ReverseMatch, ReverseSearchReport
from .vectorized import (
    VECTORIZE_ENV,
    PackedLeaf,
    VocabularyIndex,
    vectorize_enabled,
)

__all__ = [
    "AdvancedAlgorithm",
    "AlphaRefinementAlgorithm",
    "IntegratedAlgorithm",
    "ApproximateAlgorithm",
    "BasicAlgorithm",
    "DominationThresholds",
    "NodeTextStats",
    "max_dom",
    "min_dom",
    "Candidate",
    "CandidateEnumerator",
    "QuestionContext",
    "ScanFallback",
    "DominatorCache",
    "WhyNotEngine",
    "METHODS",
    "Blocker",
    "MissingProfile",
    "WhyNotExplanation",
    "explain",
    "KcRAlgorithm",
    "LocationRefinementAlgorithm",
    "ParallelAdvanced",
    "ParallelKcR",
    "makespan",
    "ParticularityIndex",
    "PenaltyModel",
    "RefinedQuery",
    "SearchCounters",
    "WhyNotAnswer",
    "FaultEvent",
    "TopKOutcome",
    "ReverseKeywordSearch",
    "ReverseMatch",
    "ReverseSearchReport",
    "VECTORIZE_ENV",
    "PackedLeaf",
    "VocabularyIndex",
    "vectorize_enabled",
]
