"""The sampling-based approximate algorithm (Section VI-B).

When ``|doc₀ ∪ M.doc|`` is large the candidate space is too big even
for the optimized algorithms.  The approximate algorithm evaluates
only a sample of ``T`` candidate keyword sets — the ``T`` with the
highest total particularity with respect to the missing objects, per
the paper's greedy sampling strategy — and returns the best refined
query within the sample (the basic refined query remains the
incumbent, so the answer is never worse than penalty ``λ``).

Any of the three exact machineries can process the sample; the paper's
Fig 12 runs all of them and observes identical penalties (same sample,
same best) with different runtimes, which this implementation
reproduces via the ``strategy`` knob.
"""

from __future__ import annotations

import time
from typing import FrozenSet, List, Optional, Sequence

from ..errors import InvalidParameterError, ensure_not_none
from ..index.kcr_tree import KcRTree
from ..index.rtree import RTreeBase
from ..index.setr_tree import SetRTree
from ..model.query import WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel
from .candidates import Candidate
from .context import QuestionContext
from .dominator_cache import DominatorCache
from .kcr_algorithm import KcRAlgorithm
from .result import RefinedQuery, SearchCounters, WhyNotAnswer

__all__ = ["ApproximateAlgorithm"]

_STRATEGIES = ("bs", "advanced", "kcr")


class ApproximateAlgorithm:
    """Sample-``T`` approximate answering with a pluggable evaluator.

    Parameters
    ----------
    tree:
        A :class:`SetRTree` for the ``"bs"``/``"advanced"`` strategies
        or a :class:`KcRTree` for ``"kcr"``.
    sample_size:
        ``T`` — how many candidate keyword sets to evaluate.
    strategy:
        Which exact machinery processes the sample.
    """

    def __init__(
        self,
        tree: RTreeBase,
        sample_size: int,
        strategy: str = "kcr",
        model: SimilarityModel = JACCARD,
    ) -> None:
        if sample_size <= 0:
            raise InvalidParameterError(
                f"sample size must be positive, got {sample_size}"
            )
        if strategy not in _STRATEGIES:
            raise InvalidParameterError(
                f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}"
            )
        if strategy == "kcr" and not isinstance(tree, KcRTree):
            raise InvalidParameterError("the 'kcr' strategy needs a KcRTree")
        if strategy in ("bs", "advanced") and not isinstance(tree, SetRTree):
            raise InvalidParameterError(f"the {strategy!r} strategy needs a SetRTree")
        self.tree = tree
        self.sample_size = sample_size
        self.strategy = strategy
        self.model = model

    @property
    def name(self) -> str:
        return f"Approx-{self.strategy.upper()}(T={self.sample_size})"

    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Best refined query within the particularity-greedy sample."""
        started = time.perf_counter()
        io_before = self.tree.stats.snapshot()
        context = QuestionContext.prepare(question, self.tree, self.model)
        counters = SearchCounters()

        sample = context.enumerator.top_by_gain(self.sample_size)
        counters.candidates_enumerated = len(sample)
        best = context.basic_refined()

        if self.strategy == "kcr":
            best = self._evaluate_kcr(context, sample, best, counters)
        else:
            best = self._evaluate_sequential(context, sample, best, counters)

        return WhyNotAnswer(
            refined=best,
            initial_rank=context.initial_rank,
            algorithm=self.name,
            elapsed_seconds=time.perf_counter() - started,
            io=self.tree.stats.snapshot() - io_before,
            counters=counters,
        )

    # ------------------------------------------------------------------
    # evaluators
    # ------------------------------------------------------------------
    def _evaluate_kcr(
        self,
        context: QuestionContext,
        sample: Sequence[Candidate],
        best: RefinedQuery,
        counters: SearchCounters,
    ) -> RefinedQuery:
        """One Algorithm 3 traversal per edit-distance group.

        Grouping keeps the Algorithm 4 early-termination licence: once
        the keyword penalty of the next group reaches the incumbent, no
        remaining sample can win.
        """
        algorithm = KcRAlgorithm(self.tree, self.model)
        by_distance: dict = {}
        for candidate in sample:
            by_distance.setdefault(candidate.delta_doc, []).append(candidate)
        for distance in sorted(by_distance):
            if context.penalty_model.keyword_penalty(distance) >= best.penalty:
                break
            best = algorithm._bound_and_prune(
                context, by_distance[distance], best, counters
            )
        return best

    def _evaluate_sequential(
        self,
        context: QuestionContext,
        sample: Sequence[Candidate],
        best: RefinedQuery,
        counters: SearchCounters,
    ) -> RefinedQuery:
        """BS-style (or AdvancedBS-style) per-candidate evaluation."""
        penalty_model = context.penalty_model
        use_optimizations = self.strategy == "advanced"
        cache: Optional[DominatorCache] = None
        ordered: List[Candidate] = list(sample)
        if use_optimizations:
            cache = DominatorCache(
                context.dataset, context.query, context.missing, self.model
            )
            ordered.sort(key=lambda c: (c.delta_doc, -c.gain))
        for candidate in ordered:
            stop_limit = None
            if use_optimizations:
                if (
                    penalty_model.keyword_penalty(candidate.delta_doc)
                    >= best.penalty
                ):
                    counters.pruned_by_keyword_penalty += 1
                    break
                stop_limit = penalty_model.max_useful_rank(
                    best.penalty, candidate.delta_doc
                )
                if cache is not None and stop_limit is not None:
                    survivors = cache.count_dominating(
                        candidate.keywords, stop_limit
                    )
                    if survivors >= stop_limit:
                        counters.pruned_by_cache += 1
                        continue
            counters.candidates_evaluated += 1
            result = context.searcher.rank_of_missing(
                context.query,
                context.missing,
                keywords=candidate.keywords,
                stop_limit=stop_limit,
            )
            if cache is not None:
                cache.add(result.dominators)
            if result.aborted:
                counters.aborted_early += 1
                continue
            rank = ensure_not_none(
                result.rank, "non-aborted rank search returned no rank"
            )
            penalty = penalty_model.penalty(candidate.delta_doc, rank)
            if penalty < best.penalty:
                best = RefinedQuery(
                    keywords=candidate.keywords,
                    k=penalty_model.refined_k(rank),
                    delta_doc=candidate.delta_doc,
                    rank=rank,
                    penalty=penalty,
                )
        return best
