"""The penalty model (Eqn 4), Lemma 1, and the Eqn 6 rank bound.

Every why-not algorithm scores a refined query ``q' = (loc, doc', k', α)``
by

``Penalty(q, q') = λ·Δk/(R(M,q) − k₀) + (1−λ)·Δdoc/|doc₀ ∪ M.doc|``

with ``Δk = max(0, k' − k₀)`` and ``Δdoc`` the insert/delete edit
distance from ``doc₀`` to ``doc'``.  Lemma 1 pins the optimal ``k'``
for a given ``doc'``: ``k' = max(k₀, R(M, q'))`` — enlarging ``k``
beyond the missing objects' rank only adds penalty, and shrinking it
below ``k₀`` never helps.

:class:`PenaltyModel` freezes the question-level constants
(``k₀``, ``R(M,q)``, ``λ``, the normaliser ``|doc₀ ∪ M.doc|``) so the
per-candidate arithmetic is a couple of multiplications, and derives
the **early-stop rank bound** of Eqn 6: the largest rank a candidate
could reach while still strictly improving on the incumbent penalty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import InvalidParameterError
from ..model.numeric import approx_zero

__all__ = ["PenaltyModel", "BASIC_REFINED_PENALTY_IS_LAMBDA"]

BASIC_REFINED_PENALTY_IS_LAMBDA = True
"""The basic refined query (keep ``doc₀``, set ``k' = R(M,q)``) always
has penalty exactly ``λ``: ``Δk/(R(M,q)−k₀) = 1`` and ``Δdoc = 0``."""


@dataclass(frozen=True)
class PenaltyModel:
    """Penalty arithmetic for one why-not question.

    Parameters
    ----------
    k0:
        The initial query's result size.
    initial_rank:
        ``R(M, q)`` — the worst missing object's rank under the
        *initial* query.  Must exceed ``k0`` (otherwise nothing is
        missing and there is no question to answer).
    doc_universe_size:
        ``|doc₀ ∪ M.doc|`` — the Δdoc normaliser.
    lam:
        ``λ`` — user preference for modifying ``k`` versus keywords.
    """

    k0: int
    initial_rank: int
    doc_universe_size: int
    lam: float

    def __post_init__(self) -> None:
        if self.k0 <= 0:
            raise InvalidParameterError(f"k0 must be positive, got {self.k0}")
        if self.initial_rank <= self.k0:
            raise InvalidParameterError(
                f"R(M,q)={self.initial_rank} must exceed k0={self.k0}; "
                "the missing objects are not actually missing"
            )
        if self.doc_universe_size <= 0:
            raise InvalidParameterError("doc universe must be non-empty")
        if not 0.0 <= self.lam <= 1.0:
            raise InvalidParameterError(f"lambda must lie in [0, 1], got {self.lam}")

    # ------------------------------------------------------------------
    # penalty components
    # ------------------------------------------------------------------
    @property
    def rank_margin(self) -> int:
        """``R(M,q) − k₀`` — the Δk normaliser."""
        return self.initial_rank - self.k0

    def keyword_penalty(self, delta_doc: int) -> float:
        """The ``(1−λ)·Δdoc/|doc₀ ∪ M.doc|`` term."""
        if delta_doc < 0:
            raise InvalidParameterError(f"delta_doc must be >= 0, got {delta_doc}")
        return (1.0 - self.lam) * delta_doc / self.doc_universe_size

    def k_penalty(self, rank: int) -> float:
        """The ``λ·Δk/(R(M,q)−k₀)`` term with Lemma 1's ``k'``."""
        delta_k = max(0, rank - self.k0)
        return self.lam * delta_k / self.rank_margin

    def penalty(self, delta_doc: int, rank: int) -> float:
        """Eqn 4 for a candidate with edit distance ``delta_doc`` whose
        worst missing object ranks ``rank`` under the refined keywords."""
        return self.k_penalty(rank) + self.keyword_penalty(delta_doc)

    def refined_k(self, rank: int) -> int:
        """Lemma 1: the optimal ``k'`` for a given missing-object rank."""
        return max(self.k0, rank)

    @property
    def basic_penalty(self) -> float:
        """Penalty of the basic refined query (``doc₀``, ``k'=R(M,q)``)."""
        return self.lam

    # ------------------------------------------------------------------
    # Eqn 6: the early-stop rank bound
    # ------------------------------------------------------------------
    def max_useful_rank(
        self, incumbent_penalty: float, delta_doc: int
    ) -> Optional[int]:
        """Largest rank at which a candidate still *strictly* improves.

        Returns ``None`` when no rank can: the keyword penalty alone
        already reaches the incumbent (the Algorithm 1 line 6 / line 12
        prune).  Returns ``math.inf``-like behaviour as a very large
        int when ``λ = 0`` and the keyword penalty improves — rank then
        has no effect on penalty at all.

        This is Eqn 6 up to strictness: the paper floors
        ``k₀ + (p_c − keyword_penalty)/λ · (R(M,q) − k₀)`` with a
        non-strict comparison; we want the exact strict-improvement
        boundary *under float semantics* (so the bound agrees with the
        ``penalty()`` the algorithms recompute on completion).  The
        closed form seeds a gallop + binary search, which terminates in
        O(log) steps even for pathological λ values where the penalty
        grows by sub-ulp amounts per rank.
        """
        text_pen = self.keyword_penalty(delta_doc)
        if text_pen >= incumbent_penalty:
            return None
        if approx_zero(self.lam):
            # Rank is (effectively) free; any rank improves as long as
            # Δdoc does.  Tolerance-based: a λ of 1e-17 arriving from an
            # upstream computation must take this branch too, or the
            # gallop below would crawl through sub-ulp penalty growth.
            return 10**18
        cap = 10**15
        base = self.k0 + (incumbent_penalty - text_pen) / self.lam * self.rank_margin
        if not math.isfinite(base) or base >= cap:
            return 10**18
        # Bracket the boundary: penalty(lo) < p_c (holds at k0, where
        # the k-penalty vanishes), penalty(hi) >= p_c.
        lo = self.k0
        hi = max(self.k0, int(base)) + 1
        while self.penalty(delta_doc, hi) < incumbent_penalty:
            hi = self.k0 + 2 * (hi - self.k0) + 1
            if hi >= cap:
                return 10**18
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self.penalty(delta_doc, mid) < incumbent_penalty:
                lo = mid
            else:
                hi = mid
        return lo
