"""KcRBased over a sharded index (round-synchronised Algorithm 3).

The single-tree algorithm interleaves bound refinement and pruning per
*node*; across shards the schedule becomes per *round*: every shard
expands one node, the driver applies all contribution deltas in shard
order, then runs one incumbent/prune sweep.  The final answer is
bit-identical to the unsharded run regardless of the differing bound
trajectory:

* every object lives in exactly one shard and shards share the global
  diagonal, so leaf-level exact sums are the same floats;
* the incumbent's owner is never pruned (its penalty lower bound never
  exceeds its own upper bound, which *is* the incumbent penalty), and
  children are only skipped once exact for every alive candidate — so
  when all shards exhaust their queues every surviving bound is exact,
  and :func:`~repro.core.kcr_algorithm.sweep_candidates`'s
  schedule-independent tie-break picks the same winner, rank and
  penalty as the single tree;
* a shard that dies mid-batch is swapped for its exact index-free
  contribution (``exact − cumulative-so-far``), which only *tightens*
  bounds toward the same exact values.

Each round is one :meth:`~repro.index.sharded.ShardedIndex.request_many`
broadcast, which books the round's makespan discount itself (round wall
minus the slowest shard's CPU busy) following
:mod:`repro.core.parallel`'s simulation convention — so the recorded
elapsed means "driver time plus one worker's work per round" on any
host, whether the overlap was simulated or ran in real worker
processes.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import StorageError, ensure_not_none
from ..index.kcr_tree import KcRTree
from ..index.sharded import Shard, ShardedIndex
from ..model.objects import SpatialObject
from ..model.query import SpatialKeywordQuery, WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel
from .candidates import Candidate
from .context import QuestionContext
from .kcr_algorithm import KcRAlgorithm, _CandidateState, sweep_candidates
from .result import RefinedQuery, SearchCounters, WhyNotAnswer

__all__ = ["ShardTraversal", "ShardedKcRAlgorithm"]

#: Per-candidate contribution (or delta): ``{s_index: (dmax, dmin)}``
#: with one integer per missing object in each list.
Contribution = Dict[int, Tuple[List[int], List[int]]]


class ShardTraversal:
    """One shard's half of Algorithm 3, advanced one node per step.

    Lives where the shard's tree lives (in-process in ``simulate``
    mode, inside the forked worker in ``process`` mode) and reuses
    :class:`KcRAlgorithm`'s bound helpers verbatim, so per-node I/O and
    arithmetic match the single-tree traversal exactly.  The driver
    owns the *global* candidate bounds; this side only reports
    contribution deltas and honours the broadcast ``alive`` flags.
    """

    def __init__(
        self,
        tree: KcRTree,
        model: SimilarityModel,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        batch: Sequence[Candidate],
    ) -> None:
        self.algo = KcRAlgorithm(tree, model)
        self.tree = tree
        self.query = query
        self.alpha = query.alpha
        self.beta = 1.0 - query.alpha
        self.missing = tuple(missing)
        self.n_missing = len(self.missing)
        self.m_sdist = [
            tree.dataset.normalized_distance(m.loc, query.loc)
            for m in self.missing
        ]
        m_spatial = [self.alpha * (1.0 - d) for d in self.m_sdist]
        self.states = [_CandidateState(c, self.n_missing) for c in batch]
        for state in self.states:
            for i, m in enumerate(self.missing):
                tsim = model.similarity(m.doc, state.candidate.keywords)
                state.m_tsim[i] = tsim
                state.m_score[i] = m_spatial[i] + self.beta * tsim

        root_stats = self.algo._node_stats(tree.root_summary_record)
        root_rect = ensure_not_none(tree.root_rect, "tree has no root MBR")
        root_geo = self.algo._geo_offsets(
            root_rect, query.loc, self.alpha, self.m_sdist
        )
        self._initial: Contribution = {}
        root_contrib: Contribution = {}
        for s_index, state in enumerate(self.states):
            dmax, dmin = self.algo._node_bounds(root_stats, *root_geo, state)
            root_contrib[s_index] = (dmax, dmin)
            self._initial[s_index] = (list(dmax), list(dmin))
        self.contributions: Dict[int, Contribution] = {
            tree.root_id: root_contrib
        }
        self.queue: Deque[int] = deque([tree.root_id])

    def initial_deltas(self) -> Contribution:
        """The root-level contribution (delta against all-zero)."""
        return self._initial

    def has_more(self) -> bool:
        return bool(self.queue)

    def step(self, alive: Sequence[bool]) -> Contribution:
        """Expand one node; return the contribution deltas it caused.

        Mirrors the single-tree expansion body: replace the node's
        contribution with its children's sums, enqueue only children
        that can still tighten some alive candidate.
        """
        for state, flag in zip(self.states, alive):
            state.alive = flag
        node_id = self.queue.popleft()
        node_contrib = self.contributions.pop(node_id, None)
        if node_contrib is None:
            return {}  # superseded; nothing to refine
        node = self.tree.fetch_node(node_id)
        if node.is_leaf:
            child_sums = self.algo._leaf_exact_sums(
                node, self.states, self.query, self.alpha, self.beta
            )
        else:
            child_sums, child_infos = self.algo._branch_child_bounds(
                node, self.states, self.query.loc, self.alpha, self.m_sdist
            )

        deltas: Contribution = {}
        for s_index, state in enumerate(self.states):
            if not state.alive:
                continue
            old_max, old_min = node_contrib[s_index]
            new_max, new_min = child_sums[s_index]
            deltas[s_index] = (
                [new_max[i] - old_max[i] for i in range(self.n_missing)],
                [new_min[i] - old_min[i] for i in range(self.n_missing)],
            )

        if not node.is_leaf:
            for entry, per_candidate in child_infos:
                useful = any(
                    self.states[s_index].alive
                    and per_candidate[s_index][0] != per_candidate[s_index][1]
                    for s_index in range(len(self.states))
                )
                if not useful:
                    continue
                self.contributions[entry.child_id] = {
                    s_index: per_candidate[s_index]
                    for s_index in range(len(self.states))
                }
                self.queue.append(entry.child_id)
        return deltas


class ShardedKcRAlgorithm:
    """Algorithm 4 driving round-synchronised per-shard traversals.

    Accrued fan-out busy time lands in the index runtime's discount;
    the engine (not this class) subtracts it from the answer's elapsed
    seconds, exactly as for the sharded BS searchers.
    """

    name = "KcRBased"

    def __init__(
        self, index: ShardedIndex, model: SimilarityModel = JACCARD
    ) -> None:
        if model.name != "jaccard":
            raise ValueError(
                "the KcR-tree bounds (Theorems 2-3) are Jaccard-specific; "
                f"got model {model.name!r}"
            )
        self.index = index
        self.model = model

    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Best refined query for ``question`` over the shard set."""
        started = time.perf_counter()
        self.index.ensure_built("kcr", self.model)
        view = self.index.view("kcr")
        io_before = view.stats.snapshot()
        context = QuestionContext.prepare(question, view, self.model)
        counters = SearchCounters()
        penalty_model = context.penalty_model

        best = context.basic_refined()
        for distance in range(1, context.enumerator.edit_universe + 1):
            if penalty_model.keyword_penalty(distance) >= best.penalty:
                break
            batch = context.enumerator.at_distance(distance)
            counters.candidates_enumerated += len(batch)
            if batch:
                best = self._bound_and_prune(context, batch, best, counters)

        return WhyNotAnswer(
            refined=best,
            initial_rank=context.initial_rank,
            algorithm=self.name,
            elapsed_seconds=time.perf_counter() - started,
            io=view.stats.snapshot() - io_before,
            counters=counters,
        )

    # ------------------------------------------------------------------
    def _bound_and_prune(
        self,
        context: QuestionContext,
        batch: Sequence[Candidate],
        best: RefinedQuery,
        counters: SearchCounters,
    ) -> RefinedQuery:
        """One batch over all shards, one sweep per round."""
        index = self.index
        query = context.query
        penalty_model = context.penalty_model
        alpha = query.alpha
        beta = 1.0 - alpha
        missing = context.missing
        n_missing = len(missing)
        dataset = index.dataset
        m_spatial = [
            alpha * (1.0 - dataset.normalized_distance(m.loc, query.loc))
            for m in missing
        ]
        states = [_CandidateState(c, n_missing) for c in batch]
        counters.candidates_evaluated += len(states)
        for state in states:
            for i, m in enumerate(missing):
                tsim = self.model.similarity(m.doc, state.candidate.keywords)
                state.m_tsim[i] = tsim
                state.m_score[i] = m_spatial[i] + beta * tsim

        shards = [shard for shard in index.shards if not shard.is_empty]
        cumulative: Dict[int, Contribution] = {}
        pending: Dict[int, bool] = {}

        # Init round: root contributions (or exact scans for down
        # shards).  Contributions are integer counter deltas, so the
        # apply order across shards cannot change the sums — the round
        # broadcasts, ``request_many`` books its makespan discount, and
        # in process mode the shards genuinely run in parallel.
        live: List[Shard] = []
        for shard in shards:
            if (shard.tid, "kcr") in index.runtime.down:
                self._swap_in_exact(shard, states, cumulative, pending, query)
            else:
                live.append(shard)
        init = ("kcr_init", query, missing, tuple(batch), self.model)
        replies = index.request_many([(shard, init) for shard in live])
        for shard, reply in zip(live, replies):
            if isinstance(reply, StorageError):
                index.mark_down(shard, "kcr", "kcr_init", reply)
                self._swap_in_exact(shard, states, cumulative, pending, query)
                continue
            (deltas, more), _busy = reply
            self._apply(states, deltas)
            cumulative[shard.tid] = {
                s_index: (list(pair[0]), list(pair[1]))
                for s_index, pair in deltas.items()
            }
            pending[shard.tid] = more

        best_owner: Optional[_CandidateState] = None
        best, best_owner = sweep_candidates(
            states, penalty_model, best, best_owner, counters
        )

        while any(pending.values()) and any(s.alive for s in states):
            alive = tuple(state.alive for state in states)
            stepping = [shard for shard in shards if pending.get(shard.tid)]
            replies = index.request_many(
                [(shard, ("kcr_step", alive)) for shard in stepping]
            )
            for shard, reply in zip(stepping, replies):
                if isinstance(reply, StorageError):
                    index.mark_down(shard, "kcr", "kcr_step", reply)
                    self._swap_in_exact(
                        shard, states, cumulative, pending, query
                    )
                    continue
                counters.nodes_expanded += 1
                (deltas, more), _busy = reply
                self._apply(states, deltas)
                self._accumulate(cumulative[shard.tid], deltas)
                pending[shard.tid] = more
            best, best_owner = sweep_candidates(
                states, penalty_model, best, best_owner, counters
            )
        return best

    @staticmethod
    def _apply(
        states: Sequence[_CandidateState], deltas: Contribution
    ) -> None:
        for s_index, (delta_max, delta_min) in deltas.items():
            state = states[s_index]
            for i in range(len(delta_max)):
                state.dmax[i] += delta_max[i]
                state.dmin[i] += delta_min[i]

    @staticmethod
    def _accumulate(total: Contribution, deltas: Contribution) -> None:
        for s_index, (delta_max, delta_min) in deltas.items():
            pair = total.get(s_index)
            if pair is None:
                total[s_index] = (list(delta_max), list(delta_min))
                continue
            for i in range(len(delta_max)):
                pair[0][i] += delta_max[i]
                pair[1][i] += delta_min[i]

    def _swap_in_exact(
        self,
        shard: Shard,
        states: Sequence[_CandidateState],
        cumulative: Dict[int, Contribution],
        pending: Dict[int, bool],
        query: SpatialKeywordQuery,
    ) -> None:
        """Replace a shard's bound contribution with its exact counts.

        ``delta = exact − cumulative`` keeps the driver's running sums
        consistent whether the shard failed before contributing, mid
        batch, or was down from the start.
        """
        exact = self._scan_contribution(shard, states, query)
        previous = cumulative.get(shard.tid, {})
        deltas: Contribution = {}
        for s_index in range(len(states)):
            exact_max, exact_min = exact[s_index]
            prev = previous.get(s_index)
            if prev is None:
                deltas[s_index] = (list(exact_max), list(exact_min))
            else:
                deltas[s_index] = (
                    [exact_max[i] - prev[0][i] for i in range(len(exact_max))],
                    [exact_min[i] - prev[1][i] for i in range(len(exact_min))],
                )
        self._apply(states, deltas)
        cumulative[shard.tid] = exact
        pending[shard.tid] = False

    def _scan_contribution(
        self,
        shard: Shard,
        states: Sequence[_CandidateState],
        query: SpatialKeywordQuery,
    ) -> Contribution:
        """Exact per-candidate dominator counts for one shard, index
        free — the same score arithmetic as the leaf-exact path, so the
        swapped-in bounds equal what a healthy traversal converges to.
        """
        alpha = query.alpha
        beta = 1.0 - alpha
        n_missing = len(states[0].m_score) if states else 0
        exact: Contribution = {
            s_index: ([0] * n_missing, [0] * n_missing)
            for s_index in range(len(states))
        }
        for obj in shard.dataset.objects:
            spatial = alpha * (
                1.0 - shard.dataset.normalized_distance(obj.loc, query.loc)
            )
            for s_index, state in enumerate(states):
                tsim = self.model.similarity(
                    obj.doc, state.candidate.keywords
                )
                score = spatial + beta * tsim
                counts = exact[s_index]
                for i in range(n_missing):
                    if score > state.m_score[i]:
                        counts[0][i] += 1
                        counts[1][i] += 1
        return exact
