"""Keyword particularity (Eqn 7).

The enumeration-order optimization (Section IV-C2) and the sampling
strategy of the approximate algorithm (Section VI-B) both rank
candidate keyword sets by how *particular* their edits are to the
missing objects.  Eqn 7 scores one keyword against one object with the
signed BM25-style IDF weight

``Parti(o, t) = ±log((|D| − n_t + 0.5)/(n_t + 0.5))``

positive when ``t ∈ o.doc`` (a rare keyword the missing object has is
very informative) and negative otherwise.

For multiple missing objects, the paper only says candidates come from
``M.doc``; we extend Eqn 7 additively — ``Parti(M, t) = Σᵢ Parti(mᵢ, t)``
— so a keyword shared by every missing object outweighs one particular
to a single member.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Sequence

from ..model.objects import Dataset, SpatialObject

__all__ = ["ParticularityIndex"]


class ParticularityIndex:
    """Cached Eqn 7 weights for one dataset and one missing-object set."""

    def __init__(self, dataset: Dataset, missing: Sequence[SpatialObject]) -> None:
        if not missing:
            raise ValueError("ParticularityIndex needs at least one missing object")
        self.dataset = dataset
        self.missing = tuple(missing)
        self._cache: Dict[int, float] = {}

    def idf(self, term: int) -> float:
        """The unsigned ``log((|D| − n_t + 0.5)/(n_t + 0.5))`` weight.

        Clamped at 0 from below: a keyword contained in more than half
        the objects would otherwise flip sign and invert the intended
        ordering (the standard BM25 clamp).
        """
        n = len(self.dataset)
        n_t = self.dataset.frequency(term)
        value = math.log((n - n_t + 0.5) / (n_t + 0.5))
        return max(0.0, value)

    def parti(self, obj: SpatialObject, term: int) -> float:
        """Eqn 7 for a single object."""
        weight = self.idf(term)
        return weight if term in obj.doc else -weight

    def parti_missing(self, term: int) -> float:
        """``Parti(M, t)`` — additive extension over the missing set."""
        cached = self._cache.get(term)
        if cached is not None:
            return cached
        value = sum(self.parti(m, term) for m in self.missing)
        self._cache[term] = value
        return value

    def edit_gain(self, added: Iterable[int], removed: Iterable[int]) -> float:
        """Net particularity gain of an edit script.

        Inserting keywords particular to the missing objects and
        deleting keywords foreign to them both increase the gain; the
        enumeration order sorts candidates of equal edit distance by
        *descending* gain (the paper's "ascending sum of the total
        particularity of the inserted (+) and deleted (−) keywords").
        """
        gain = sum(self.parti_missing(t) for t in added)
        gain -= sum(self.parti_missing(t) for t in removed)
        return gain
