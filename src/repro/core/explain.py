"""Human-readable why-not explanations.

The paper's motivation (Section I) is usability: a user staring at a
result wants to know *why* an expected object is absent and *what* to
change.  The algorithms answer the second question with a refined
query; this module answers the first by decomposing the evidence:

* the missing object's score breakdown (spatial vs. textual) under the
  initial query;
* the objects that dominate it, each labelled with the axis it wins on
  (closer, better keyword match, or both);
* what the refined query changes, in words.

:func:`explain` returns a structured :class:`WhyNotExplanation`;
``render()`` produces the terminal-friendly report the examples print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..data.vocabulary import Vocabulary
from ..model.objects import Dataset, SpatialObject
from ..model.query import SpatialKeywordQuery, WhyNotQuestion
from ..model.scoring import Scorer
from ..model.similarity import JACCARD, SimilarityModel
from .result import WhyNotAnswer

__all__ = ["Blocker", "MissingProfile", "WhyNotExplanation", "explain"]


@dataclass(frozen=True)
class Blocker:
    """One object that outranks a missing object, with its edge."""

    oid: int
    score: float
    spatial: float  # 1 - SDist
    textual: float  # TSim
    wins_spatially: bool
    wins_textually: bool

    @property
    def edge(self) -> str:
        if self.wins_spatially and self.wins_textually:
            return "closer AND better keyword match"
        if self.wins_spatially:
            return "closer to the query location"
        if self.wins_textually:
            return "better keyword match"
        return "higher combined score"


@dataclass(frozen=True)
class MissingProfile:
    """Score decomposition of one missing object under the initial query."""

    oid: int
    rank: int
    score: float
    spatial: float
    textual: float
    blockers: Tuple[Blocker, ...]


@dataclass
class WhyNotExplanation:
    """The full explanation bundle for one answered why-not question."""

    question: WhyNotQuestion
    answer: WhyNotAnswer
    missing_profiles: Tuple[MissingProfile, ...]
    added_keywords: FrozenSet[int]
    removed_keywords: FrozenSet[int]
    vocabulary: Optional[Vocabulary] = None

    def _words(self, keywords) -> str:
        if self.vocabulary is not None:
            return ", ".join(self.vocabulary.decode(keywords)) or "(none)"
        return ", ".join(str(t) for t in sorted(keywords)) or "(none)"

    def render(self, max_blockers: int = 3) -> str:
        """A terminal-friendly multi-line report."""
        query = self.question.query
        lines: List[str] = []
        lines.append(
            f"Why-not report for query keywords [{self._words(query.doc)}], "
            f"top-{query.k}, alpha={query.alpha}"
        )
        for profile in self.missing_profiles:
            lines.append(
                f"\nMissing object #{profile.oid} ranked {profile.rank} "
                f"(score {profile.score:.3f} = "
                f"{query.alpha:.2f}*{profile.spatial:.3f} spatial + "
                f"{1 - query.alpha:.2f}*{profile.textual:.3f} textual)."
            )
            if not profile.blockers:
                lines.append("  Nothing outranked it (already in the result).")
                continue
            lines.append(
                f"  Outranked by {profile.rank - 1} object(s); the strongest:"
            )
            for blocker in profile.blockers[:max_blockers]:
                lines.append(
                    f"    - object #{blocker.oid} "
                    f"(score {blocker.score:.3f}): {blocker.edge}"
                )
        refined = self.answer.refined
        lines.append("\nSuggested refinement:")
        if self.added_keywords:
            lines.append(f"  + add keyword(s): {self._words(self.added_keywords)}")
        if self.removed_keywords:
            lines.append(
                f"  - drop keyword(s): {self._words(self.removed_keywords)}"
            )
        if refined.alpha is not None:
            lines.append(
                f"  ~ shift the spatial/textual preference to "
                f"alpha={refined.alpha:.3f}"
            )
        if refined.k != query.k:
            lines.append(f"  ~ enlarge k from {query.k} to {refined.k}")
        if not (
            self.added_keywords
            or self.removed_keywords
            or refined.alpha is not None
            or refined.k != query.k
        ):
            lines.append("  (the original query already suffices)")
        lines.append(
            f"  -> the missing object(s) then rank within the top-{refined.k} "
            f"(penalty {refined.penalty:.4f})."
        )
        return "\n".join(lines)


def explain(
    dataset: Dataset,
    question: WhyNotQuestion,
    answer: WhyNotAnswer,
    *,
    vocabulary: Optional[Vocabulary] = None,
    model: SimilarityModel = JACCARD,
    max_blockers: int = 10,
) -> WhyNotExplanation:
    """Build the explanation for an answered why-not question.

    Pure in-memory analysis over the dataset (brute-force scoring);
    it is diagnostics, not a measured algorithm, so it deliberately
    bypasses the I/O-accounted indexes.
    """
    scorer = Scorer(dataset, model=model)
    query = question.query
    profiles: List[MissingProfile] = []
    for oid in question.missing:
        missing_obj = dataset.get(oid)
        m_score = scorer.st(missing_obj, query)
        m_spatial = 1.0 - scorer.sdist(missing_obj, query)
        m_textual = scorer.tsim(missing_obj, query.doc)
        blockers: List[Blocker] = []
        for other in dataset:
            if other.oid == oid:
                continue
            score = scorer.st(other, query)
            if score <= m_score:
                continue
            spatial = 1.0 - scorer.sdist(other, query)
            textual = scorer.tsim(other, query.doc)
            blockers.append(
                Blocker(
                    oid=other.oid,
                    score=score,
                    spatial=spatial,
                    textual=textual,
                    wins_spatially=spatial > m_spatial,
                    wins_textually=textual > m_textual,
                )
            )
        blockers.sort(key=lambda b: -b.score)
        profiles.append(
            MissingProfile(
                oid=oid,
                rank=len(blockers) + 1,
                score=m_score,
                spatial=m_spatial,
                textual=m_textual,
                blockers=tuple(blockers[:max_blockers]),
            )
        )
    refined = answer.refined
    added = refined.keywords - query.doc
    removed = query.doc - refined.keywords
    return WhyNotExplanation(
        question=question,
        answer=answer,
        missing_profiles=tuple(profiles),
        added_keywords=frozenset(added),
        removed_keywords=frozenset(removed),
        vocabulary=vocabulary,
    )
