"""The KcR-tree bound-and-prune algorithm (**KcRBased**, Section V).

Algorithm 3 evaluates a whole batch of candidate keyword sets in a
single traversal of the KcR-tree.  For every candidate ``S`` it
maintains, per missing object, lower and upper bounds on the number of
dominators (from :mod:`repro.core.bounds`); unfolding a node replaces
that node's contribution with the sum of its children's, monotonically
tightening both rank bounds and therefore both penalty bounds.  A
candidate whose penalty lower bound exceeds the incumbent penalty is
pruned; a candidate whose penalty upper bound improves on the
incumbent becomes the new incumbent.  Children that can no longer
tighten any alive candidate are not enqueued, and the traversal ends
when the queue or the candidate set empties — at which point all
surviving bounds are exact (leaf children are objects with known
documents).

Algorithm 4 drives Algorithm 3 strategically: candidates are batched
by edit distance, batches are visited in ascending distance, and the
whole process stops as soon as the next batch's keyword penalty alone
cannot beat the incumbent — the same early-termination licence the
enumeration order gives AdvancedBS.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ensure_not_none
from ..index.kcr_tree import KcRTree
from ..model.query import WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel
from .bounds import NodeTextStats, max_dom, min_dom
from .candidates import Candidate
from .context import QuestionContext
from .penalty import PenaltyModel
from .result import RefinedQuery, SearchCounters, WhyNotAnswer

__all__ = ["KcRAlgorithm", "sweep_candidates"]

KeywordSet = FrozenSet[int]


class _CandidateState:
    """Bound-tracking state for one candidate inside Algorithm 3."""

    __slots__ = (
        "candidate",
        "m_tsim",
        "m_score",
        "dmax",
        "dmin",
        "alive",
    )

    def __init__(self, candidate: Candidate, n_missing: int) -> None:
        self.candidate = candidate
        self.m_tsim: List[float] = [0.0] * n_missing  # TSim(m_i, S)
        self.m_score: List[float] = [0.0] * n_missing  # ST(m_i, q_S)
        self.dmax: List[int] = [0] * n_missing  # running Σ MaxDom
        self.dmin: List[int] = [0] * n_missing  # running Σ MinDom
        self.alive = True

    def rank_upper(self) -> int:
        """Upper bound on ``R(M, q_S)`` = max over missing objects."""
        return max(self.dmax) + 1

    def rank_lower(self) -> int:
        """Lower bound on ``R(M, q_S)``.

        The paper aggregates MinDom with a ``min`` over the missing
        objects; since ``R(M, ·)`` is a max of per-object ranks, the
        max of per-object lower bounds is also valid and tighter, so we
        use it (noted in DESIGN.md).
        """
        return max(self.dmin) + 1


class KcRAlgorithm:
    """KcRBased: Algorithms 3 + 4 over the KcR-tree."""

    name = "KcRBased"

    def __init__(
        self,
        tree: KcRTree,
        model: SimilarityModel = JACCARD,
        *,
        vectorize: Optional[bool] = None,
    ) -> None:
        if model.name != "jaccard":
            raise ValueError(
                "the KcR-tree bounds (Theorems 2-3) are Jaccard-specific; "
                f"got model {model.name!r}"
            )
        from .vectorized import vectorize_enabled

        self.tree = tree
        self.model = model
        self.vectorize = vectorize_enabled(vectorize)
        # NodeTextStats is O(|kcm| log |kcm|) to build; cache per aux
        # record for the lifetime of the algorithm instance.  Purely an
        # in-memory artefact: the underlying kcm fetch that feeds it is
        # still I/O-accounted on every traversal.
        self._stats_cache: Dict[int, NodeTextStats] = {}

    # ------------------------------------------------------------------
    # Algorithm 4: the strategic driver
    # ------------------------------------------------------------------
    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Return the best refined query for ``question``."""
        started = time.perf_counter()
        io_before = self.tree.stats.snapshot()
        context = QuestionContext.prepare(question, self.tree, self.model)
        counters = SearchCounters()
        penalty_model = context.penalty_model

        best = context.basic_refined()
        for distance in range(1, context.enumerator.edit_universe + 1):
            if penalty_model.keyword_penalty(distance) >= best.penalty:
                break
            batch = context.enumerator.at_distance(distance)
            counters.candidates_enumerated += len(batch)
            if batch:
                best = self._bound_and_prune(context, batch, best, counters)

        return WhyNotAnswer(
            refined=best,
            initial_rank=context.initial_rank,
            algorithm=self.name,
            elapsed_seconds=time.perf_counter() - started,
            io=self.tree.stats.snapshot() - io_before,
            counters=counters,
        )

    # ------------------------------------------------------------------
    # Algorithm 3: one-traversal bound-and-prune over a batch
    # ------------------------------------------------------------------
    def _bound_and_prune(
        self,
        context: QuestionContext,
        batch: Sequence[Candidate],
        best: RefinedQuery,
        counters: SearchCounters,
    ) -> RefinedQuery:
        """Evaluate ``batch`` in one KcR-tree traversal (Algorithm 3)."""
        tree = self.tree
        query = context.query
        penalty_model = context.penalty_model
        alpha = query.alpha
        beta = 1.0 - alpha
        missing = context.missing
        n_missing = len(missing)
        m_sdist = [
            tree.dataset.normalized_distance(m.loc, query.loc) for m in missing
        ]
        m_spatial = [alpha * (1.0 - d) for d in m_sdist]

        states = [_CandidateState(c, n_missing) for c in batch]
        counters.candidates_evaluated += len(states)
        for state in states:
            for i, m in enumerate(missing):
                tsim = self.model.similarity(m.doc, state.candidate.keywords)
                state.m_tsim[i] = tsim
                state.m_score[i] = m_spatial[i] + beta * tsim

        # Root-level initial bounds (Algorithm 3 lines 2-6).
        root_stats = self._node_stats(tree.root_summary_record)
        root_rect = ensure_not_none(tree.root_rect, "tree has no root MBR")
        root_geo = self._geo_offsets(root_rect, query.loc, alpha, m_sdist)
        contributions: Dict[int, Dict[int, Tuple[List[int], List[int]]]] = {}
        root_contrib: Dict[int, Tuple[List[int], List[int]]] = {}
        for s_index, state in enumerate(states):
            dmax, dmin = self._node_bounds(root_stats, *root_geo, state)
            state.dmax = list(dmax)
            state.dmin = list(dmin)
            root_contrib[s_index] = (dmax, dmin)
        contributions[tree.root_id] = root_contrib

        best_owner: Optional[_CandidateState] = None
        best, best_owner = self._sweep_candidates(
            states, penalty_model, best, best_owner, counters
        )
        alive_count = sum(1 for s in states if s.alive)
        if alive_count == 0:
            return best

        queue: Deque[int] = deque([tree.root_id])
        while queue:
            node_id = queue.popleft()
            counters.nodes_expanded += 1
            node_contrib = contributions.pop(node_id, None)
            if node_contrib is None:
                continue  # contribution superseded; nothing to refine
            node = tree.fetch_node(node_id)

            if node.is_leaf:
                child_sums = self._leaf_exact_sums(node, states, query, alpha, beta)
            else:
                child_sums, child_infos = self._branch_child_bounds(
                    node, states, query.loc, alpha, m_sdist
                )

            # Lines 18-19: replace this node's contribution with the
            # children's sums, per candidate and per missing object.
            for s_index, state in enumerate(states):
                if not state.alive:
                    continue
                old_max, old_min = node_contrib[s_index]
                new_max, new_min = child_sums[s_index]
                for i in range(n_missing):
                    state.dmax[i] += new_max[i] - old_max[i]
                    state.dmin[i] += new_min[i] - old_min[i]

            best, best_owner = self._sweep_candidates(
                states, penalty_model, best, best_owner, counters
            )
            if not any(state.alive for state in states):
                return best

            if not node.is_leaf:
                for entry, per_candidate in child_infos:
                    # Line 29-30: skip children whose bounds are already
                    # exact for every alive candidate.
                    useful = any(
                        states[s_index].alive
                        and per_candidate[s_index][0] != per_candidate[s_index][1]
                        for s_index in range(len(states))
                    )
                    if not useful:
                        continue
                    contributions[entry.child_id] = {
                        s_index: per_candidate[s_index]
                        for s_index in range(len(states))
                    }
                    queue.append(entry.child_id)
        return best

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _node_stats(self, aux_record: int) -> NodeTextStats:
        stats = self._stats_cache.get(aux_record)
        if stats is None:
            cnt, kcm = self.tree.fetch_kcm(aux_record)
            stats = NodeTextStats(cnt, kcm)
            self._stats_cache[aux_record] = stats
        else:
            # Still charge the fetch so I/O accounting matches a real
            # traversal; the buffer pool decides hit or miss.
            self.tree.fetch_kcm(aux_record)
        return stats

    def _geo_offsets(
        self, rect, query_loc, alpha: float, m_sdist: Sequence[float]
    ) -> Tuple[List[float], List[float]]:
        """Geometric halves of the Theorem-2 thresholds for one node.

        ``L_i = geo_lower[i] + TSim(m_i, S)`` and likewise for ``U_i``;
        computing the rectangle distances once per node (instead of
        once per node × candidate × missing object) is the dominant
        saving for large candidate batches.
        """
        diagonal = self.tree.dataset.diagonal
        min_d = min(1.0, rect.min_dist(query_loc) / diagonal)
        max_d = min(1.0, rect.max_dist(query_loc) / diagonal)
        ratio = alpha / (1.0 - alpha)
        geo_lower = [ratio * (min_d - sdist) for sdist in m_sdist]
        geo_upper = [ratio * (max_d - sdist) for sdist in m_sdist]
        return geo_lower, geo_upper

    def _node_bounds(
        self,
        stats: NodeTextStats,
        geo_lower: Sequence[float],
        geo_upper: Sequence[float],
        state: _CandidateState,
    ) -> Tuple[List[int], List[int]]:
        """(MaxDom, MinDom) per missing object for one node/candidate.

        Results are memoised per distinct threshold within the call:
        missing objects frequently share ``TSim(m_i, S)`` and therefore
        thresholds, and MinDom is skipped outright when MaxDom is
        already zero (``0 <= dmin <= dmax``).
        """
        keywords = state.candidate.keywords
        dmax: List[int] = []
        dmin: List[int] = []
        max_cache: Dict[float, int] = {}
        min_cache: Dict[float, int] = {}
        for i in range(len(geo_lower)):
            lower = geo_lower[i] + state.m_tsim[i]
            upper = geo_upper[i] + state.m_tsim[i]
            d_hi = max_cache.get(lower)
            if d_hi is None:
                d_hi = max_dom(stats, keywords, lower)
                max_cache[lower] = d_hi
            if d_hi == 0:
                d_lo = 0
            else:
                d_lo = min_cache.get(upper)
                if d_lo is None:
                    d_lo = min_dom(stats, keywords, upper)
                    min_cache[upper] = d_lo
            dmax.append(d_hi)
            dmin.append(d_lo)
        return dmax, dmin

    def _branch_child_bounds(
        self,
        node,
        states: Sequence[_CandidateState],
        query_loc,
        alpha: float,
        m_sdist: Sequence[float],
    ):
        """Bounds for every child of a branch node, per candidate.

        Returns ``(child_sums, child_infos)`` where ``child_sums`` maps
        candidate index to summed (dmax, dmin) vectors and
        ``child_infos`` pairs each child entry with its per-candidate
        bounds for contribution bookkeeping.
        """
        n_missing = len(m_sdist)
        child_infos = []
        child_sums: Dict[int, Tuple[List[int], List[int]]] = {
            s_index: ([0] * n_missing, [0] * n_missing)
            for s_index in range(len(states))
        }
        for entry in node.child_entries:
            stats = self._node_stats(entry.aux_record)
            geo_lower, geo_upper = self._geo_offsets(
                entry.rect, query_loc, alpha, m_sdist
            )
            per_candidate: Dict[int, Tuple[List[int], List[int]]] = {}
            for s_index, state in enumerate(states):
                if not state.alive:
                    per_candidate[s_index] = (
                        [0] * n_missing,
                        [0] * n_missing,
                    )
                    continue
                dmax, dmin = self._node_bounds(stats, geo_lower, geo_upper, state)
                per_candidate[s_index] = (dmax, dmin)
                sums = child_sums[s_index]
                for i in range(n_missing):
                    sums[0][i] += dmax[i]
                    sums[1][i] += dmin[i]
            child_infos.append((entry, per_candidate))
        return child_sums, child_infos

    def _leaf_exact_sums(
        self,
        node,
        states: Sequence[_CandidateState],
        query,
        alpha: float,
        beta: float,
    ) -> Dict[int, Tuple[List[int], List[int]]]:
        """Exact dominator counts for the objects of a leaf node.

        Vectorised over the leaf's objects with a term-incidence
        matrix: one boolean column per keyword occurring in the leaf,
        so each candidate's Jaccard similarities for the whole leaf
        reduce to a column-slice sum.  When the leaf carries a healthy
        packed columnar block (:mod:`repro.core.vectorized`) and
        vectorization is on, the intersections come from bitmask
        popcounts instead — exact small integers in float64 either way,
        so the resulting scores are bit-identical.  Doc fetches stay
        per-object (I/O-accounted); only the arithmetic is batched.
        """
        tree = self.tree
        n_missing = len(states[0].m_score) if states else 0
        entries = node.object_entries
        docs = [tree.fetch_doc(entry.doc_record) for entry in entries]
        packed = tree.packed_leaf(node) if self.vectorize else None
        if packed is not None and len(packed) != len(entries):
            packed = None
        if packed is not None:
            from .vectorized import batch_intersections
        else:
            term_index: Dict[int, int] = {}
            for doc in docs:
                for term in doc:
                    if term not in term_index:
                        term_index[term] = len(term_index)
            incidence = np.zeros(
                (len(entries), max(1, len(term_index))), dtype=np.float64
            )
            for row, doc in enumerate(docs):
                for term in doc:
                    incidence[row, term_index[term]] = 1.0
        doc_lengths = np.array([len(doc) for doc in docs], dtype=np.float64)
        spatial = np.array(
            [
                alpha * (1.0 - tree.dataset.normalized_distance(e.loc, query.loc))
                for e in entries
            ],
            dtype=np.float64,
        )

        sums: Dict[int, Tuple[List[int], List[int]]] = {
            s_index: ([0] * n_missing, [0] * n_missing)
            for s_index in range(len(states))
        }
        for s_index, state in enumerate(states):
            if not state.alive:
                continue
            keywords = state.candidate.keywords
            if packed is not None:
                # Popcount over the packed bitmask block: exact small
                # integers in float64, identical to the column sums.
                inter = batch_intersections(
                    packed.masks, tree.vocab.encode(keywords)
                )
            else:
                columns = [term_index[t] for t in keywords if t in term_index]
                if columns:
                    inter = incidence[:, columns].sum(axis=1)
                else:
                    inter = np.zeros(len(entries))
            union = doc_lengths + float(len(keywords)) - inter
            with np.errstate(divide="ignore", invalid="ignore"):
                tsim = np.where(union > 0.0, inter / union, 0.0)
            scores = spatial + beta * tsim
            dmax, dmin = sums[s_index]
            for i in range(n_missing):
                count = int(np.count_nonzero(scores > state.m_score[i]))
                dmax[i] += count
                dmin[i] += count
        return sums

    def _sweep_candidates(
        self,
        states: Sequence[_CandidateState],
        penalty_model: PenaltyModel,
        best: RefinedQuery,
        best_owner: Optional[_CandidateState],
        counters: SearchCounters,
    ) -> Tuple[RefinedQuery, Optional[_CandidateState]]:
        return sweep_candidates(states, penalty_model, best, best_owner, counters)


def sweep_candidates(
    states: Sequence[_CandidateState],
    penalty_model: PenaltyModel,
    best: RefinedQuery,
    best_owner: Optional[_CandidateState],
    counters: SearchCounters,
) -> Tuple[RefinedQuery, Optional[_CandidateState]]:
    """Lines 20-26: update the incumbent and prune candidates.

    Shared between the single-tree traversal above and the sharded
    driver (:mod:`repro.core.kcr_sharded`), whose per-round node
    schedule differs from the single tree's per-node schedule — the
    sweep must therefore be *schedule-independent* so both engines
    report the identical incumbent.

    The incumbent snapshot is refreshed not only when another
    candidate strictly improves the penalty, but also when the
    snapshot's *own* rank bound tightens at an unchanged penalty —
    the penalty is flat for ranks at or below ``k₀``, and without
    the refresh the reported rank/k' would freeze at the first
    (loose) bound instead of converging to the exact value.

    **Equal-penalty tie-break.**  When a candidate's penalty upper
    bound *ties* the incumbent and the incumbent's owner sits later in
    the same batch, ownership moves to the earlier candidate.  Penalty
    upper bounds only tighten, so the final owner is always the
    lowest-batch-index candidate among those reaching the minimal
    penalty — a property of the batch alone, not of the order in which
    tree nodes refined the bounds.  (An owner from an earlier distance
    batch is not in ``states`` and keeps the tie, matching AdvancedBS's
    first-in-enumeration-order rule.)  Pruning is unaffected: it
    compares against ``best.penalty``, which a tie cannot change.
    """
    owner_index: Optional[int] = None
    if best_owner is not None:
        for s_index, state in enumerate(states):
            if state is best_owner:
                owner_index = s_index
                break
    for s_index, state in enumerate(states):
        if not state.alive:
            continue
        rank_upper = state.rank_upper()
        pn_upper = penalty_model.penalty(state.candidate.delta_doc, rank_upper)
        improves = pn_upper < best.penalty
        displaces = (
            pn_upper == best.penalty  # bit-equal tie, not approx compare
            and owner_index is not None
            and s_index < owner_index
        )
        owner_refresh = state is best_owner and rank_upper != best.rank
        if improves or displaces or owner_refresh:
            best = RefinedQuery(
                keywords=state.candidate.keywords,
                k=penalty_model.refined_k(rank_upper),
                delta_doc=state.candidate.delta_doc,
                rank=rank_upper,
                penalty=pn_upper,
            )
            best_owner = state
            owner_index = s_index
    for state in states:
        if not state.alive:
            continue
        pn_lower = penalty_model.penalty(
            state.candidate.delta_doc, state.rank_lower()
        )
        if pn_lower > best.penalty:
            state.alive = False
            counters.pruned_by_bounds += 1
    return best, best_owner
