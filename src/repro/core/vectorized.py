"""Vectorized leaf-scoring kernels over a packed columnar layout.

The production search path scores leaf objects one at a time in pure
Python while the brute-force oracle (:mod:`repro.model.oracle`) proves
the arithmetic is embarrassingly batchable.  This module closes that
gap without changing a single answer:

* :class:`VocabularyIndex` interns the dataset vocabulary into bit
  positions so a keyword set becomes a row of ``uint64`` blocks;
* :class:`PackedLeaf` is the columnar mirror of one leaf node —
  ``float64`` coordinate arrays, document lengths, and the bitmask
  matrix — built at bulk-load time, maintained through inserts/deletes/
  splits, and round-tripped through index persistence;
* the batch kernels evaluate SDist, Jaccard/Dice/Cosine set similarity,
  ST (Eqn 1), and candidate penalties (Eqn 4) for a whole leaf or
  candidate batch in one shot.

Parity contract
---------------

**Vectorized is an optimization, never a semantics change.**  Every
kernel reproduces the scalar path bit for bit:

* set cardinalities are exact small integers, representable exactly in
  ``float64``; popcounts equal ``len(a & b)`` by construction;
* divisions (``x / y``), products, and square roots are single
  correctly-rounded IEEE-754 operations, identical whether numpy or the
  interpreter executes them, **as long as the operand order matches** —
  every kernel spells its expression in exactly the scalar order
  (e.g. ``alpha * (1.0 - dist) + (1.0 - alpha) * tsim``);
* spatial distances use the ``sqrt(dx² + dy²)`` formulation that
  :func:`repro.model.geometry.euclidean` pins precisely so both
  backends agree: every step is a single correctly-rounded IEEE-754
  operation, identical under numpy and the interpreter.  (``np.hypot``
  versus ``math.hypot`` would differ by one ulp on ~0.6% of operand
  pairs — the formulation choice is what makes the distance kernel
  vectorizable at all);
* the empty-operand convention (similarity involving an empty side is
  0.0) is shared with :mod:`repro.model.similarity`, which pins it.

The kernels never touch storage: callers fetch documents through the
buffer pool exactly as the scalar path does (same accounted I/O, same
fault surface) and hand the packed block in.  The ``REPRO_VECTORIZE``
environment switch (default **on**) gates *use* of the kernels, never
the construction of the packed blocks, so the on-disk layout and the
accounted storage-operation sequence are identical in both modes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..model.objects import Dataset

__all__ = [
    "VECTORIZE_ENV",
    "vectorize_enabled",
    "VocabularyIndex",
    "PackedLeaf",
    "batch_distances",
    "batch_intersections",
    "batch_similarity",
    "batch_st",
    "batch_penalties",
    "leaf_scores",
]

KeywordSet = FrozenSet[int]

VECTORIZE_ENV = "REPRO_VECTORIZE"
"""Environment switch for the vectorized hot path.  Unset or any value
other than ``0``/``false``/``off``/``no`` means **on**; the pure-Python
scalar path remains available as the fallback and as the parity
reference."""

_OFF_VALUES = frozenset({"0", "false", "off", "no"})


def vectorize_enabled(override: Optional[bool] = None) -> bool:
    """Whether the vectorized kernels should be used.

    ``override`` short-circuits the environment lookup — searcher and
    algorithm constructors accept an explicit flag so parity tests can
    compare both paths in one process without mutating ``os.environ``.
    """
    if override is not None:
        return override
    raw = os.environ.get(VECTORIZE_ENV)
    if raw is None:
        return True
    return raw.strip().lower() not in _OFF_VALUES


_BLOCK_BITS = 64


class VocabularyIndex:
    """Interns keyword ids into bit positions of ``uint64`` blocks.

    Built once per tree from the dataset vocabulary (sorted, so the
    encoding is deterministic) and extended in place when dynamic
    inserts introduce unseen terms.  Widening is append-only: a packed
    leaf built under a narrower vocabulary stays valid because its
    documents cannot contain the newer terms — kernels intersect over
    the common block prefix.
    """

    __slots__ = ("_bit",)

    def __init__(self, terms: Iterable[int] = ()) -> None:
        self._bit: Dict[int, int] = {}
        self.extend(terms)

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "VocabularyIndex":
        return cls(sorted(dataset.doc_frequency))

    def __len__(self) -> int:
        return len(self._bit)

    def __contains__(self, term: object) -> bool:
        return term in self._bit

    @property
    def n_blocks(self) -> int:
        """``uint64`` blocks needed for the current vocabulary width."""
        return max(1, -(-len(self._bit) // _BLOCK_BITS))

    def extend(self, terms: Iterable[int]) -> None:
        """Assign bit positions to any unseen terms (sorted for
        determinism within one batch)."""
        bit = self._bit
        for term in sorted(set(terms) - bit.keys()):
            bit[term] = len(bit)

    def encode(self, keywords: Iterable[int]) -> np.ndarray:
        """Bitmask row for a keyword set, at the current width.

        Terms outside the vocabulary are ignored: they cannot occur in
        any indexed document, so they can never contribute to an
        intersection — callers carry the *full* set cardinality
        separately (see :func:`batch_similarity`).
        """
        blocks = np.zeros(self.n_blocks, dtype=np.uint64)
        bit = self._bit
        for term in keywords:
            position = bit.get(term)
            if position is not None:
                blocks[position // _BLOCK_BITS] |= np.uint64(
                    1 << (position % _BLOCK_BITS)
                )
        return blocks


@dataclass
class PackedLeaf:
    """Columnar mirror of one leaf node (or of a whole dataset).

    Stored as a pager record next to the node it mirrors; the object
    order matches the node's entry order exactly, so kernel output
    aligns with ``node.object_entries`` by index.
    """

    oids: np.ndarray  # int64  (n,)
    xs: np.ndarray  # float64 (n,)
    ys: np.ndarray  # float64 (n,)
    doc_lens: np.ndarray  # float64 (n,) — exact integer values
    masks: np.ndarray  # uint64  (n, n_blocks)

    @classmethod
    def build(
        cls,
        items: Sequence[Tuple[int, Tuple[float, float], KeywordSet]],
        vocab: VocabularyIndex,
    ) -> "PackedLeaf":
        """Pack ``(oid, loc, doc)`` triples under ``vocab``'s encoding."""
        n = len(items)
        oids = np.fromiter((oid for oid, _, _ in items), dtype=np.int64, count=n)
        xs = np.fromiter((loc[0] for _, loc, _ in items), dtype=np.float64, count=n)
        ys = np.fromiter((loc[1] for _, loc, _ in items), dtype=np.float64, count=n)
        doc_lens = np.fromiter(
            (len(doc) for _, _, doc in items), dtype=np.float64, count=n
        )
        masks = np.zeros((n, vocab.n_blocks), dtype=np.uint64)
        for row, (_, _, doc) in enumerate(items):
            masks[row] = vocab.encode(doc)
        return cls(oids=oids, xs=xs, ys=ys, doc_lens=doc_lens, masks=masks)

    @classmethod
    def of_dataset(
        cls, dataset: Dataset, vocab: VocabularyIndex
    ) -> "PackedLeaf":
        """Pack an entire dataset (the degraded-scan fast path)."""
        return cls.build(
            [(obj.oid, obj.loc, obj.doc) for obj in dataset], vocab
        )

    def __len__(self) -> int:
        return int(self.oids.shape[0])

    @property
    def width(self) -> int:
        """Mask width in ``uint64`` blocks at build time."""
        return int(self.masks.shape[1])

    def equals(self, other: "PackedLeaf") -> bool:
        """Exact structural equality (round-trip tests)."""
        return (
            np.array_equal(self.oids, other.oids)
            and np.array_equal(self.xs, other.xs)
            and np.array_equal(self.ys, other.ys)
            and np.array_equal(self.doc_lens, other.doc_lens)
            and np.array_equal(self.masks, other.masks)
        )


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------

def batch_distances(
    xs: np.ndarray,
    ys: np.ndarray,
    query_loc: Tuple[float, float],
    dataset: Dataset,
) -> np.ndarray:
    """Normalized distances of packed points to the query location.

    Mirrors ``Dataset.normalized_distance`` operation for operation:
    ``min(sqrt(dx² + dy²) / diagonal, 1.0)``.  Each step is one
    correctly-rounded IEEE-754 operation, so the batch is bit-identical
    to the scalar loop — see the module docstring's parity contract for
    why the ``euclidean`` formulation avoids ``hypot``.
    """
    dx = xs - query_loc[0]
    dy = ys - query_loc[1]
    dist = np.sqrt(dx * dx + dy * dy) / dataset.diagonal
    return np.minimum(dist, 1.0)


def batch_intersections(masks: np.ndarray, query_mask: np.ndarray) -> np.ndarray:
    """``|doc ∩ query|`` per packed row, as exact ``float64`` counts.

    Intersects over the common block prefix: a leaf packed under a
    narrower (older) vocabulary has no bits for newer terms, and a
    narrower query mask has none for terms the leaf has never seen.
    """
    width = min(masks.shape[1], query_mask.shape[0])
    if width == 0 or masks.shape[0] == 0:
        return np.zeros(masks.shape[0], dtype=np.float64)
    joint = masks[:, :width] & query_mask[np.newaxis, :width]
    return np.bitwise_count(joint).sum(axis=1, dtype=np.int64).astype(np.float64)


def batch_similarity(
    model_name: str,
    inter: np.ndarray,
    doc_lens: np.ndarray,
    query_len: int,
) -> np.ndarray:
    """Batched textual similarity, bit-identical to the scalar models.

    ``query_len`` is the **full** cardinality of the query keyword set,
    including terms outside the vocabulary (which ``inter`` correctly
    never counts).  The empty-operand convention of
    :mod:`repro.model.similarity` applies: an empty query yields zeros,
    and rows with empty documents yield 0.0 under every model.
    """
    n = inter.shape[0]
    if query_len == 0:
        return np.zeros(n, dtype=np.float64)
    if model_name == "jaccard":
        union = doc_lens + float(query_len) - inter
        # union >= query_len > 0, so the division is always defined;
        # empty docs give inter == 0 -> 0.0, matching the convention.
        return inter / union
    if model_name == "dice":
        total = doc_lens + float(query_len)
        sim = 2.0 * inter / total
        # Scalar Dice returns 0.0 outright for empty docs; 2*0/|q|
        # already is exactly 0.0, so no masking is needed.
        return sim
    if model_name == "cosine":
        with np.errstate(divide="ignore", invalid="ignore"):
            sim = inter / np.sqrt(doc_lens * float(query_len))
        return np.where(doc_lens > 0.0, sim, 0.0)
    raise ValueError(f"unknown similarity model {model_name!r}")


def batch_st(alpha: float, dist: np.ndarray, tsim: np.ndarray) -> np.ndarray:
    """Eqn 1 combination, in the scalar operand order."""
    return alpha * (1.0 - dist) + (1.0 - alpha) * tsim


def batch_penalties(
    lam: float,
    k0: int,
    rank_margin: int,
    doc_universe_size: int,
    delta_docs: Sequence[int],
    ranks: Sequence[int],
) -> np.ndarray:
    """Eqn 4 penalties for a candidate batch.

    Mirrors ``PenaltyModel.penalty`` exactly:
    ``λ·max(0, rank−k₀)/(R(M,q)−k₀) + (1−λ)·Δdoc/|doc₀ ∪ M.doc|``,
    evaluated as ``k_penalty + keyword_penalty`` in that order.
    """
    delta_k = np.maximum(
        0, np.asarray(ranks, dtype=np.int64) - k0
    ).astype(np.float64)
    delta_doc = np.asarray(delta_docs, dtype=np.float64)
    k_pen = lam * delta_k / float(rank_margin)
    kw_pen = (1.0 - lam) * delta_doc / float(doc_universe_size)
    return k_pen + kw_pen


def leaf_scores(
    packed: PackedLeaf,
    query_loc: Tuple[float, float],
    alpha: float,
    query_mask: np.ndarray,
    query_len: int,
    model_name: str,
    dataset: Dataset,
) -> List[float]:
    """ST scores (Eqn 1) for every object of a packed leaf.

    Returns plain Python floats in entry order, bit-identical to the
    scalar ``TopKSearcher._object_score`` loop over the same leaf.
    """
    if len(packed) == 0:
        return []
    dist = batch_distances(packed.xs, packed.ys, query_loc, dataset)
    inter = batch_intersections(packed.masks, query_mask)
    tsim = batch_similarity(model_name, inter, packed.doc_lens, query_len)
    scores = batch_st(alpha, dist, tsim)
    result: List[float] = scores.tolist()
    return result
