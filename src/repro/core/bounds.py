"""Dominator-count bounds over KcR-tree nodes (Section V-B).

Given a node ``N`` (its ``cnt`` and keyword-count map), a candidate
keyword set ``S``, and a missing object ``m``, this module estimates

* ``MaxDom(N, S, m)`` — an upper bound on how many objects in ``N``
  can rank above ``m`` (Theorem 2 + Theorem 3, Algorithm 2), and
* ``MinDom(N, S, m)`` — a lower bound on how many objects in ``N``
  are *guaranteed* to rank above ``m`` (the symmetric estimate the
  paper describes as "done similarly").

**Thresholds.**  Theorem 2: an object ``o ∈ N`` can dominate ``m``
only if ``TSim(o, S) > L`` where

``L = α/(1−α) · (MinDist(N,q) − SDist(m,q)) + TSim(m, S)``.

Dually, ``o`` *surely* dominates when ``TSim(o, S) > U`` with
``MaxDist`` in place of ``MinDist`` — wherever ``o`` sits inside the
MBR, its score beats ``m``'s.

**Aggregate counting.**  Algorithm 2 walks a hypothetical dominator
count ``ans`` downward from ``cnt``.  If ``ans`` dominators existed,
their summed intersections with ``S`` would be at most
``N(ans) = Σ_{t∈S} min(count(t), ans)`` while their summed unions are
at least ``|S|·ans + E(ans)`` with
``E(ans) = Σ_{t∉S} max(0, count(t) − (cnt − ans))`` (irrelevant
keyword instances that cannot all hide in the other objects).  When
even that optimistic pseudo similarity falls below ``L`` — i.e.
``f(ans) = N(ans) − L·(|S|·ans + E(ans)) < 0`` — ``ans`` dominators
are impossible, so the bound is the **largest** ``ans`` with
``f(ans) >= 0``.

**Search strategy.**  ``N`` is concave in ``ans`` (a sum of
``min``-of-linear terms), ``E`` is convex (a sum of hinge terms), so
``f`` is concave; its non-negative set is one contiguous interval.
The implementation therefore ternary-searches the maximum of ``f`` and
binary-searches the right boundary — ``O(log² cnt)`` evaluations, each
``O(|S| + log V)`` via per-node sorted-count prefix sums — instead of
the paper's ``O(cnt)`` step-by-step set updates.  The literal
Algorithm 2 scan is kept as :func:`max_dom_scan` /
:func:`min_dom_scan` (reference semantics; equivalence is
property-tested).

``MinDom`` mirrors this: it bounds the number of possible
*non*-dominators (``TSim ≤ U``) through the concave feasibility
function ``g(ans) = U·(|S|·ans + P(ans)) − F(ans)`` (``P`` the padded
unions, ``F`` the forced relevant instances) and returns ``cnt`` minus
the largest feasible count.

Both bounds become exact at the leaf level, where children are objects
with known documents; :func:`object_dominates` is that exact check.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from ..model.geometry import Point, Rect

__all__ = [
    "NodeTextStats",
    "DominationThresholds",
    "max_dom",
    "min_dom",
    "max_dom_scan",
    "min_dom_scan",
    "object_dominates",
]

KeywordSet = FrozenSet[int]
KcMap = Dict[int, int]


class NodeTextStats:
    """Cached per-node count statistics, independent of ``S``.

    ``excess(x) = Σ_t max(0, count(t) − x)`` over *all* keywords in the
    node, answered in ``O(log V)`` from sorted counts and prefix sums.
    Per-``S`` quantities are derived by correcting with the (few)
    counts of the keywords in ``S``.
    """

    __slots__ = ("cnt", "kcm", "_sorted", "_prefix", "total", "_rel_cache")

    def __init__(self, cnt: int, kcm: KcMap) -> None:
        self.cnt = cnt
        self.kcm = kcm
        self._sorted: List[int] = sorted(kcm.values())
        prefix = [0]
        for count in self._sorted:
            prefix.append(prefix[-1] + count)
        self._prefix = prefix
        self.total = prefix[-1]
        self._rel_cache: Dict[KeywordSet, "_RelStats"] = {}

    def excess(self, x: int) -> int:
        """``Σ_t max(0, count(t) − x)`` over every keyword of the node."""
        if x <= 0:
            return self.total
        position = bisect.bisect_right(self._sorted, x)
        above = len(self._sorted) - position
        return (self._prefix[-1] - self._prefix[position]) - above * x

    def rel_counts(self, keywords: KeywordSet) -> List[int]:
        """Counts of the candidate keywords present in the node."""
        kcm = self.kcm
        return [kcm[t] for t in keywords if t in kcm]

    def rel_stats(self, keywords: KeywordSet) -> "_RelStats":
        """Prefix-summed relevant counts, cached per keyword set.

        The same (node, candidate) pair is evaluated once per missing
        object and again on every refinement visit; the cache makes
        those reuses free.
        """
        cached = self._rel_cache.get(keywords)
        if cached is None:
            cached = _RelStats(self.rel_counts(keywords))
            self._rel_cache[keywords] = cached
        return cached


class DominationThresholds:
    """The Theorem-2 pair ``(L, U)`` for one node and one missing object.

    ``m_sdist`` is ``SDist(m, q)`` and ``m_tsim`` is ``TSim(m, S)``;
    both are exact because the algorithms know the missing object.
    """

    __slots__ = ("lower", "upper")

    def __init__(
        self,
        rect: Rect,
        query_loc: Point,
        diagonal: float,
        alpha: float,
        m_sdist: float,
        m_tsim: float,
    ) -> None:
        min_d = min(1.0, rect.min_dist(query_loc) / diagonal)
        max_d = min(1.0, rect.max_dist(query_loc) / diagonal)
        ratio = alpha / (1.0 - alpha)
        self.lower = ratio * (min_d - m_sdist) + m_tsim
        self.upper = ratio * (max_d - m_sdist) + m_tsim


# ----------------------------------------------------------------------
# shared evaluation pieces
# ----------------------------------------------------------------------
class _RelStats:
    """Sorted prefix sums over the candidate keywords' node counts.

    Answers both ``Σ min(c, ans)`` (the optimistic intersections) and
    ``Σ max(0, c − x)`` (the forced/corrected excess) in ``O(log |S|)``
    — these run millions of times per KcR query, so the genexpr forms
    are too slow.
    """

    __slots__ = ("counts", "prefix", "n", "total", "cmax")

    def __init__(self, rel_counts: Sequence[int]) -> None:
        self.counts = sorted(rel_counts)
        prefix = [0]
        for count in self.counts:
            prefix.append(prefix[-1] + count)
        self.prefix = prefix
        self.n = len(self.counts)
        self.total = prefix[-1]
        self.cmax = self.counts[-1] if self.counts else 0

    def capped_sum(self, ans: int) -> int:
        """``Σ min(c, ans)``."""
        position = bisect.bisect_right(self.counts, ans)
        return self.prefix[position] + (self.n - position) * ans

    def excess(self, x: int) -> int:
        """``Σ max(0, c − x)``."""
        if x <= 0:
            return self.total
        position = bisect.bisect_right(self.counts, x)
        return (self.total - self.prefix[position]) - (self.n - position) * x


def _boundary_right(
    f: Callable[[int], float], left: int, right: int
) -> int:
    """Largest ``ans`` with ``f >= 0`` given ``f(left) >= 0 > f(right)``
    and ``f`` non-increasing across the boundary (concavity)."""
    while left + 1 < right:
        mid = (left + right) // 2
        if f(mid) >= 0:
            left = mid
        else:
            right = mid
    return left


def _largest_nonneg(
    f: Callable[[int], float], lo: int, hi: int, peak_hint: Optional[int] = None
) -> Optional[int]:
    """Largest integer in ``[lo, hi]`` with ``f >= 0``, for concave ``f``.

    Returns ``None`` when ``f`` is negative everywhere on the range.
    Fast paths: a non-negative right endpoint answers immediately, and
    ``peak_hint`` (an upper bound on the argmax, e.g. where the
    numerator saturates) shrinks the ternary-search range.
    """
    if hi < lo:
        return None
    if f(hi) >= 0:
        return hi
    a, b = lo, hi
    if peak_hint is not None and peak_hint < hi:
        pivot = max(lo, peak_hint)
        if f(pivot) >= 0:
            # boundary is on the decreasing side, past the peak range
            return _boundary_right(f, pivot, hi)
        b = pivot  # the whole non-negative region (if any) is below
    # Ternary-search the maximum of the concave function on [a, b].
    while b - a > 2:
        m1 = a + (b - a) // 3
        m2 = b - (b - a) // 3
        if f(m1) < f(m2):
            a = m1 + 1
        else:
            b = m2 - 1
    peak = max(range(a, b + 1), key=f)
    if f(peak) < 0:
        return None
    return _boundary_right(f, peak, hi)


# ----------------------------------------------------------------------
# MaxDom
# ----------------------------------------------------------------------
def _max_dom_f(
    stats: NodeTextStats,
    rel: "_RelStats",
    n_keywords: int,
    lower_threshold: float,
) -> Callable[[int], float]:
    cnt = stats.cnt
    excess = stats.excess
    rel_capped = rel.capped_sum
    rel_excess = rel.excess

    def f(ans: int) -> float:
        x = cnt - ans
        denominator = n_keywords * ans + (excess(x) - rel_excess(x))
        return rel_capped(ans) - lower_threshold * denominator

    return f


def max_dom(
    stats: NodeTextStats, keywords: KeywordSet, lower_threshold: float
) -> int:
    """Algorithm 2: upper bound on dominators of ``m`` inside the node.

    ``lower_threshold`` is ``L``; dominators need ``TSim > L``.
    """
    cnt = stats.cnt
    if lower_threshold <= 0.0:
        return cnt  # the necessary condition is vacuous
    if lower_threshold > 1.0:
        return 0  # no Jaccard similarity can exceed 1
    rel = stats.rel_stats(keywords)
    if rel.n == 0 or not keywords:
        return 0  # TSim is 0 for every object, which cannot exceed L > 0
    # Cheap zero test: every object's similarity is capped by
    # |S ∩ N.doc| / |S| (the union has at least |S| terms), so a
    # threshold at or above that cap rules out all dominators without
    # running the search.  f(ans) <= ans·(|rel| − L·|S|) makes this the
    # strict version of the same inequality.
    if lower_threshold * len(keywords) > rel.n:
        return 0
    f = _max_dom_f(stats, rel, len(keywords), lower_threshold)
    # The numerator saturates at the largest relevant count, beyond
    # which f strictly decreases — a tight hint for the peak search.
    best = _largest_nonneg(f, 1, cnt, peak_hint=rel.cmax)
    return best if best is not None else 0


def max_dom_scan(
    stats: NodeTextStats, keywords: KeywordSet, lower_threshold: float
) -> int:
    """Reference implementation: the paper's literal downward scan."""
    cnt = stats.cnt
    if lower_threshold <= 0.0:
        return cnt
    if lower_threshold > 1.0:
        return 0
    rel = stats.rel_stats(keywords)
    if rel.n == 0 or not keywords:
        return 0
    f = _max_dom_f(stats, rel, len(keywords), lower_threshold)
    for ans in range(cnt, 0, -1):
        if f(ans) >= 0:
            return ans
    return 0


# ----------------------------------------------------------------------
# MinDom
# ----------------------------------------------------------------------
def _min_dom_g(
    stats: NodeTextStats,
    rel: "_RelStats",
    n_keywords: int,
    upper_threshold: float,
) -> Callable[[int], float]:
    cnt = stats.cnt
    irr_total = stats.total - rel.total
    excess = stats.excess
    rel_excess = rel.excess

    def g(ans: int) -> float:
        # ans hypothetical non-dominators: forced relevant instances
        # versus the most padded unions they could have.
        forced_rel = rel_excess(cnt - ans)
        padded_union = n_keywords * ans + (
            irr_total - (excess(ans) - rel_excess(ans))
        )
        return upper_threshold * padded_union - forced_rel

    return g


def min_dom(
    stats: NodeTextStats, keywords: KeywordSet, upper_threshold: float
) -> int:
    """Lower bound on guaranteed dominators of ``m`` inside the node.

    ``upper_threshold`` is ``U``; an object with ``TSim > U`` surely
    dominates, so an object can be a non-dominator only if its
    similarity can consistently stay ``<= U``.  We bound the maximum
    number of such non-dominators and return the complement.
    """
    cnt = stats.cnt
    if upper_threshold < 0.0:
        return cnt  # even TSim = 0 beats the threshold: all dominate
    if upper_threshold >= 1.0 or not keywords:
        return 0  # every object can plausibly be a non-dominator
    rel = stats.rel_stats(keywords)
    if rel.n == 0:
        return 0  # no relevant keywords: every object can sit at TSim 0
    g = _min_dom_g(stats, rel, len(keywords), upper_threshold)
    if g(cnt) >= 0.0:
        return 0  # all objects can plausibly be non-dominators
    # No relevant instance is forced while ans <= cnt - cmax, so g >= 0
    # there; the feasibility boundary lies in [cnt - cmax, cnt] and g
    # crosses it once (concavity), so a plain binary search suffices.
    anchor = cnt - rel.cmax
    if anchor < 1 or g(anchor) < 0.0:
        feasible = _largest_nonneg(g, 1, cnt)
        return cnt - (feasible if feasible is not None else 0)
    return cnt - _boundary_right(g, anchor, cnt)


def min_dom_scan(
    stats: NodeTextStats, keywords: KeywordSet, upper_threshold: float
) -> int:
    """Reference implementation: the literal downward scan."""
    cnt = stats.cnt
    if upper_threshold < 0.0:
        return cnt
    if upper_threshold >= 1.0 or not keywords:
        return 0
    g = _min_dom_g(stats, stats.rel_stats(keywords), len(keywords), upper_threshold)
    for ans in range(cnt, 0, -1):
        if g(ans) >= 0:
            return cnt - ans
    return cnt


def object_dominates(
    obj_score: float,
    missing_score: float,
) -> bool:
    """Exact leaf-level check: strict Eqn 3 domination."""
    return obj_score > missing_score
