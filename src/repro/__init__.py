"""repro — Why-not spatial keyword top-k queries via keyword adaption.

A full reproduction of Chen, Xu, Lin, Jensen & Hu,
"Answering Why-Not Spatial Keyword Top-k Queries via Keyword Adaption"
(ICDE 2016): the SetR-tree and KcR-tree hybrid indexes over a simulated
disk, the BS / AdvancedBS / KcRBased why-not algorithms, the
multiple-missing-object extension, the sampling-based approximate
algorithm, and an experiment harness regenerating every figure of the
paper's evaluation.

Quickstart::

    from repro import make_euro_like, WhyNotEngine, SpatialKeywordQuery, WhyNotQuestion

    dataset, vocabulary = make_euro_like(5000, seed=7)
    engine = WhyNotEngine(dataset)
    query = SpatialKeywordQuery(loc=(0.4, 0.6), doc=vocabulary.encode(["term_1", "term_5"]), k=10)
    missing_oid = engine.top_k(query.with_k(51))[-1][1]
    answer = engine.answer(WhyNotQuestion(query, (missing_oid,)), method="kcr")
    print(answer.refined.describe(vocabulary))
"""

from .core import (
    AdvancedAlgorithm,
    AlphaRefinementAlgorithm,
    ApproximateAlgorithm,
    IntegratedAlgorithm,
    BasicAlgorithm,
    Candidate,
    CandidateEnumerator,
    DominatorCache,
    KcRAlgorithm,
    ParallelAdvanced,
    ParallelKcR,
    ParticularityIndex,
    PenaltyModel,
    QuestionContext,
    RefinedQuery,
    SearchCounters,
    WhyNotAnswer,
    WhyNotEngine,
)
from .core import (
    Blocker,
    FaultEvent,
    LocationRefinementAlgorithm,
    MissingProfile,
    ReverseKeywordSearch,
    ReverseMatch,
    ReverseSearchReport,
    ScanFallback,
    TopKOutcome,
    WhyNotExplanation,
    explain,
)
from .data import (
    Vocabulary,
    load_dataset,
    load_flatfile,
    make_euro_like,
    make_gn_like,
    make_micro_example,
    normalize_keywords,
    save_dataset,
    save_flatfile,
    tokenize,
)
from .errors import (
    CorruptRecordError,
    DatasetError,
    IndexStructureError,
    InvalidParameterError,
    InvalidQueryError,
    MissingObjectError,
    PersistenceError,
    RecordNotFoundError,
    ReproError,
    StorageError,
    TransientIOError,
)
from .index import (
    InvertedFileIndex,
    KcRTree,
    RankResult,
    SetRTree,
    TopKSearcher,
    load_index,
    save_index,
)
from .model import (
    Dataset,
    Oracle,
    Scorer,
    SpatialKeywordQuery,
    SpatialObject,
    WhyNotQuestion,
)
from .storage import (
    MIXED,
    TRANSIENT_ONLY,
    BufferPool,
    FaultInjector,
    FaultSchedule,
    IOSnapshot,
    IOStatistics,
    Pager,
)

__version__ = "1.0.0"

__all__ = [
    "AdvancedAlgorithm",
    "AlphaRefinementAlgorithm",
    "IntegratedAlgorithm",
    "ApproximateAlgorithm",
    "BasicAlgorithm",
    "Candidate",
    "CandidateEnumerator",
    "DominatorCache",
    "KcRAlgorithm",
    "ParallelAdvanced",
    "ParallelKcR",
    "ParticularityIndex",
    "PenaltyModel",
    "QuestionContext",
    "RefinedQuery",
    "SearchCounters",
    "WhyNotAnswer",
    "WhyNotEngine",
    "FaultEvent",
    "TopKOutcome",
    "ScanFallback",
    "Vocabulary",
    "load_dataset",
    "make_euro_like",
    "make_gn_like",
    "make_micro_example",
    "save_dataset",
    "load_flatfile",
    "save_flatfile",
    "normalize_keywords",
    "tokenize",
    "LocationRefinementAlgorithm",
    "InvertedFileIndex",
    "Blocker",
    "MissingProfile",
    "WhyNotExplanation",
    "explain",
    "ReverseKeywordSearch",
    "ReverseMatch",
    "ReverseSearchReport",
    "DatasetError",
    "IndexStructureError",
    "InvalidParameterError",
    "InvalidQueryError",
    "MissingObjectError",
    "ReproError",
    "StorageError",
    "TransientIOError",
    "CorruptRecordError",
    "RecordNotFoundError",
    "PersistenceError",
    "KcRTree",
    "RankResult",
    "SetRTree",
    "TopKSearcher",
    "save_index",
    "load_index",
    "Dataset",
    "Oracle",
    "Scorer",
    "SpatialKeywordQuery",
    "SpatialObject",
    "WhyNotQuestion",
    "BufferPool",
    "IOSnapshot",
    "IOStatistics",
    "Pager",
    "FaultInjector",
    "FaultSchedule",
    "TRANSIENT_ONLY",
    "MIXED",
    "__version__",
]
