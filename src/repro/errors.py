"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  More specific subclasses exist for the three broad failure
domains: bad user input (queries / parameters), data-model violations,
and storage-layer faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidQueryError(ReproError, ValueError):
    """A query object violates its own invariants.

    Raised, for example, when ``k <= 0``, when ``alpha`` falls outside
    the open interval ``(0, 1)``, or when the query keyword set is
    empty where a non-empty set is required.
    """


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its documented domain.

    Raised for a ``lambda`` preference outside ``[0, 1]``, a
    non-positive sample size for the approximate algorithm, a thread
    count below one, and similar misconfigurations.
    """


class MissingObjectError(ReproError, ValueError):
    """A why-not question references an unusable missing object.

    Raised when the missing-object set is empty, contains an id that
    is not in the dataset, or contains an object that is already in
    the top-``k`` result of the initial query (so there is nothing to
    explain).
    """


class DatasetError(ReproError, ValueError):
    """A dataset violates the data-model invariants.

    Raised for duplicate object ids, empty datasets where objects are
    required, or objects whose documents reference keywords that are
    not in the vocabulary.
    """


class StorageError(ReproError, RuntimeError):
    """A simulated-disk fault: unknown page id, double free, etc."""


class IndexError_(ReproError, RuntimeError):
    """An index structure is malformed or used before being built.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexStructureError`` from the
    package root.
    """


# Public alias that avoids the awkward trailing underscore.
IndexStructureError = IndexError_
