"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  More specific subclasses exist for the three broad failure
domains: bad user input (queries / parameters), data-model violations,
and storage-layer faults.
"""

from __future__ import annotations

from typing import Optional, TypeVar

_T = TypeVar("_T")


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidQueryError(ReproError, ValueError):
    """A query object violates its own invariants.

    Raised, for example, when ``k <= 0``, when ``alpha`` falls outside
    the open interval ``(0, 1)``, or when the query keyword set is
    empty where a non-empty set is required.
    """


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its documented domain.

    Raised for a ``lambda`` preference outside ``[0, 1]``, a
    non-positive sample size for the approximate algorithm, a thread
    count below one, and similar misconfigurations.
    """


class MissingObjectError(ReproError, ValueError):
    """A why-not question references an unusable missing object.

    Raised when the missing-object set is empty, contains an id that
    is not in the dataset, or contains an object that is already in
    the top-``k`` result of the initial query (so there is nothing to
    explain).
    """


class DatasetError(ReproError, ValueError):
    """A dataset violates the data-model invariants.

    Raised for duplicate object ids, empty datasets where objects are
    required, or objects whose documents reference keywords that are
    not in the vocabulary.
    """


class StorageError(ReproError, RuntimeError):
    """A simulated-disk fault: unknown page id, double free, etc."""


class IndexError_(ReproError, RuntimeError):
    """An index structure is malformed or used before being built.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexStructureError`` from the
    package root.
    """


class InvariantViolationError(ReproError, RuntimeError):
    """An internal invariant failed at runtime.

    Replaces bare ``assert`` statements in library code: asserts are
    stripped by ``python -O``, so invariants guarded by them silently
    vanish in optimised runs.  Raised by :func:`ensure` /
    :func:`ensure_not_none` and by the structural sanitizer
    (:mod:`repro.analysis.sanitize`).
    """


def ensure(condition: bool, message: str) -> None:
    """Raise :class:`InvariantViolationError` unless ``condition`` holds.

    The ``python -O``-safe replacement for ``assert condition, message``
    in runtime paths (the ``bare-assert`` lint rule points here).
    """
    if not condition:
        raise InvariantViolationError(message)


def ensure_not_none(value: Optional[_T], message: str) -> _T:
    """Return ``value``, raising :class:`InvariantViolationError` if None.

    Replaces the ``assert x is not None`` narrowing idiom: it survives
    ``python -O`` and still narrows ``Optional[T]`` to ``T`` for type
    checkers because the ``None`` branch raises.
    """
    if value is None:
        raise InvariantViolationError(message)
    return value


# Public alias that avoids the awkward trailing underscore.
IndexStructureError = IndexError_
