"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  More specific subclasses exist for the three broad failure
domains: bad user input (queries / parameters), data-model violations,
and storage-layer faults.
"""

from __future__ import annotations

from typing import Optional, TypeVar

_T = TypeVar("_T")


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidQueryError(ReproError, ValueError):
    """A query object violates its own invariants.

    Raised, for example, when ``k <= 0``, when ``alpha`` falls outside
    the open interval ``(0, 1)``, or when the query keyword set is
    empty where a non-empty set is required.
    """


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its documented domain.

    Raised for a ``lambda`` preference outside ``[0, 1]``, a
    non-positive sample size for the approximate algorithm, a thread
    count below one, and similar misconfigurations.
    """


class MissingObjectError(ReproError, ValueError):
    """A why-not question references an unusable missing object.

    Raised when the missing-object set is empty, contains an id that
    is not in the dataset, or contains an object that is already in
    the top-``k`` result of the initial query (so there is nothing to
    explain).
    """


class DatasetError(ReproError, ValueError):
    """A dataset violates the data-model invariants.

    Raised for duplicate object ids, empty datasets where objects are
    required, or objects whose documents reference keywords that are
    not in the vocabulary.
    """


class StorageError(ReproError, RuntimeError):
    """A simulated-disk fault: unknown page id, double free, etc."""


class TransientIOError(StorageError):
    """A *retriable* storage fault: the page transfer failed this time.

    Models the flaky-I/O class of disk errors (bus resets, momentary
    controller timeouts).  :meth:`repro.storage.buffer_pool.BufferPool`
    retries these with bounded deterministic backoff; one that escapes
    the pool means the retry budget is exhausted and callers should
    treat it as terminal for the current operation.
    """


class CorruptRecordError(StorageError):
    """A record's payload no longer matches its stored checksum.

    Terminal for the record: retrying cannot help (the bytes on the
    simulated disk are wrong — bit-rot or a torn multi-page write).
    ``record_id`` carries the damaged record so callers can quarantine
    the subtree that references it.
    """

    def __init__(self, record_id: int, message: Optional[str] = None) -> None:
        self.record_id = record_id
        super().__init__(
            message
            or f"record {record_id} failed checksum verification "
            "(bit-rot or torn write)"
        )


class RecordNotFoundError(StorageError, KeyError):
    """A referenced record id does not exist on the simulated disk.

    Raised instead of letting a raw ``KeyError`` leak out of
    :meth:`repro.storage.pager.Pager.read`; ``record_id`` carries the
    missing id.  Also a :class:`KeyError` subclass so legacy callers
    catching that keep working.
    """

    def __init__(self, record_id: int, message: Optional[str] = None) -> None:
        self.record_id = record_id
        # KeyError repr-quotes its lone argument; go through the full
        # MRO with an explicit message so str() stays readable.
        super().__init__(message or f"unknown record id {record_id}")

    def __str__(self) -> str:
        return self.args[0] if self.args else "unknown record id"


class PersistenceError(StorageError, ValueError):
    """A saved dataset/index file is unreadable: truncated, corrupt,
    or written by an unknown format version.

    The message always ends with a recovery hint (restore from backup,
    re-save from the in-memory structures, or upgrade the library).
    Also a :class:`ValueError` subclass so legacy callers catching that
    on format-version mismatches keep working.
    """


class IndexError_(ReproError, RuntimeError):
    """An index structure is malformed or used before being built.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexStructureError`` from the
    package root.
    """


class InvariantViolationError(ReproError, RuntimeError):
    """An internal invariant failed at runtime.

    Replaces bare ``assert`` statements in library code: asserts are
    stripped by ``python -O``, so invariants guarded by them silently
    vanish in optimised runs.  Raised by :func:`ensure` /
    :func:`ensure_not_none` and by the structural sanitizer
    (:mod:`repro.analysis.sanitize`).
    """


def ensure(condition: bool, message: str) -> None:
    """Raise :class:`InvariantViolationError` unless ``condition`` holds.

    The ``python -O``-safe replacement for ``assert condition, message``
    in runtime paths (the ``bare-assert`` lint rule points here).
    """
    if not condition:
        raise InvariantViolationError(message)


def ensure_not_none(value: Optional[_T], message: str) -> _T:
    """Return ``value``, raising :class:`InvariantViolationError` if None.

    Replaces the ``assert x is not None`` narrowing idiom: it survives
    ``python -O`` and still narrows ``Optional[T]`` to ``T`` for type
    checkers because the ``None`` branch raises.
    """
    if value is None:
        raise InvariantViolationError(message)
    return value


# Public alias that avoids the awkward trailing underscore.
IndexStructureError = IndexError_
