"""Command-line interface.

Subcommands::

    repro-whynot datasets   [--scale default]        # Table II
    repro-whynot params                              # Table III
    repro-whynot experiment fig4 [--scale smoke] [-o out.md]
    repro-whynot experiment all  [--scale default] [-o EXPERIMENTS_RESULTS.md]
    repro-whynot demo       [--size 2000 --seed 7]   # end-to-end example
    repro-whynot lint       src/repro [...]          # repo-specific AST lint
    repro-whynot analyze    [src/repro] [--json]     # flow / contract checker
    repro-whynot check-invariants [--size 10000]     # index/storage sanitizer
    repro-whynot chaos      [--seed 7 --queries 200] # fault-injection harness
    repro-whynot chaos --shards 4 --fault-shard 0    # per-shard containment
    repro-whynot chaos --serve                       # same gate, via the server
    repro-whynot serve      [--shards 4]             # scripted serving smoke
    repro-whynot serve-bench [--requests 2000]       # simulated heavy traffic
    repro-whynot bench --emit [--check baselines/]   # BENCH_fig*.json + gate
    repro-whynot bench --emit --figures fig13 --full # 1M-object sharded sweep

(Also runnable as ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from .experiments.ablations import ABLATIONS, run_ablation
from .experiments.config import PARAMETER_GRID, SCALES
from .experiments.figures import FIGURES, run_figure, table2_dataset_info
from .experiments.reporting import figure_to_markdown, figure_to_text, rows_to_table

__all__ = ["main"]


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = table2_dataset_info(SCALES[args.scale])
    print("Table II substitute: generated dataset statistics")
    print(rows_to_table(rows))
    return 0


def _cmd_params(_args: argparse.Namespace) -> int:
    print("Table III: parameter settings (defaults marked *)")
    defaults = {
        "k0": 10,
        "n_keywords": 4,
        "alpha": 0.5,
        "rank_target": 51,
        "lam": 0.5,
        "n_missing": 1,
    }
    rows = []
    for name, values in PARAMETER_GRID.items():
        default = defaults.get(name)
        rendered = ", ".join(
            f"{v}*" if v == default else str(v) for v in values
        )
        rows.append({"parameter": name, "settings": rendered})
    print(rows_to_table(rows))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.figure == "all":
        names: List[str] = sorted(FIGURES)
    elif args.figure == "ablations":
        names = sorted(ABLATIONS)
    else:
        names = [args.figure]
    known = set(FIGURES) | set(ABLATIONS)
    unknown = [n for n in names if n not in known]
    if unknown:
        print(
            f"unknown figure(s): {unknown}; choose from {sorted(known)}, "
            "'all', or 'ablations'"
        )
        return 2
    markdown_chunks: List[str] = []
    for name in names:
        started = time.perf_counter()
        if name in FIGURES:
            result = run_figure(name, args.scale)
        else:
            result = run_ablation(name, args.scale)
        elapsed = time.perf_counter() - started
        print(figure_to_text(result))
        if args.chart:
            from .experiments.charts import figure_chart

            print()
            print(figure_chart(result, "time"))
            print()
            print(figure_chart(result, "ios"))
        print(f"   [{name} regenerated in {elapsed:.1f}s at scale={args.scale}]")
        print()
        markdown_chunks.append(figure_to_markdown(result))
    if args.output:
        Path(args.output).write_text(
            "\n\n".join(markdown_chunks) + "\n", encoding="utf-8"
        )
        print(f"markdown written to {args.output}")
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    """Profile the optimal refinements across the λ sweep."""
    from .experiments.quality import profile_quality, quality_report_rows

    profiles = profile_quality(SCALES[args.scale])
    print("Result-quality profile of optimal refinements (exact KcRBased answers)")
    print(rows_to_table(quality_report_rows(profiles)))
    print(
        "\nkeyword_edit_win_rate: fraction of why-not questions where "
        "editing keywords strictly beats enlarging k alone."
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Cross-check every exact algorithm against brute force."""
    import numpy as np

    from . import (
        MissingObjectError,
        Oracle,
        PenaltyModel,
        SpatialKeywordQuery,
        WhyNotEngine,
        WhyNotQuestion,
        make_euro_like,
    )
    from .core.candidates import CandidateEnumerator

    dataset, _ = make_euro_like(args.size, seed=args.seed)
    engine = WhyNotEngine(dataset)
    oracle = Oracle(dataset)
    rng = np.random.default_rng(args.seed)

    passed = 0
    attempted = 0
    while passed < args.trials and attempted < 50 * args.trials:
        attempted += 1
        seed_obj = dataset.objects[int(rng.integers(0, len(dataset)))]
        doc = frozenset(list(seed_obj.doc)[:3])
        if len(doc) < 2:
            continue
        query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=5)
        try:
            missing = oracle.object_at_rank(query, 21)
        except ValueError:
            continue
        if len(dataset.get(missing).doc - query.doc) > 5:
            continue
        question = WhyNotQuestion(query, (missing,), lam=0.5)

        missing_doc = dataset.get(missing).doc
        initial_rank = oracle.rank(missing, query)
        pm = PenaltyModel(
            k0=query.k,
            initial_rank=initial_rank,
            doc_universe_size=len(query.doc | missing_doc),
            lam=question.lam,
        )
        best = pm.basic_penalty
        for candidate in CandidateEnumerator(query.doc, missing_doc).iter_naive():
            rank = oracle.rank(missing, query, candidate.keywords)
            best = min(best, pm.penalty(candidate.delta_doc, rank))

        answers = {
            method: engine.answer(question, method=method).refined.penalty
            for method in ("basic", "advanced", "kcr")
        }
        ok = all(abs(p - best) < 1e-9 for p in answers.values())
        status = "OK " if ok else "FAIL"
        print(
            f"[{status}] trial {passed}: brute-force optimum {best:.4f}, "
            + ", ".join(f"{m}={p:.4f}" for m, p in answers.items())
        )
        if not ok:
            return 1
        passed += 1
    print(f"{passed}/{args.trials} trials verified against brute force")
    return 0 if passed == args.trials else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the repo-specific AST lint rules; exit 1 on any finding."""
    from .analysis import lint_paths

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}")
        return 2
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.format())
    print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Run the unified static-analysis driver.

    ``--rules`` picks rulesets (comma-separated from lint, flow, taint,
    lifetime); ``--all`` runs every ruleset plus stale-waiver
    detection.  Exit codes: 0 = no new findings (waived and baselined
    findings are reported but do not fail), 1 = new findings, 2 = bad
    usage / unparseable input.
    """
    import json as json_module

    from .analysis import ALL_RULESETS, load_baseline, run_analysis

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}")
        return 2
    if args.all:
        rulesets = ALL_RULESETS
    else:
        rulesets = tuple(
            name.strip() for name in args.rules.split(",") if name.strip()
        )
        unknown = sorted(set(rulesets) - set(ALL_RULESETS))
        if unknown:
            print(
                f"unknown ruleset(s): {', '.join(unknown)} "
                f"(choose from {', '.join(ALL_RULESETS)})"
            )
            return 2
    baseline = load_baseline(args.baseline) if args.baseline else None
    report = run_analysis(args.paths, rulesets=rulesets, baseline=baseline)
    if args.write_baseline:
        payload = report.baseline_payload()
        Path(args.write_baseline).write_text(
            json_module.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(
            f"baseline with {len(payload['violations'])} violation key(s) "
            f"written to {args.write_baseline}"
        )
        return 0
    if args.json:
        print(report.to_json(include_signatures=args.signatures))
    else:
        print(report.format_text())
    return 1 if report.blocking_count or report.errors else 0


def _cmd_check_invariants(args: argparse.Namespace) -> int:
    """Build both hybrid indexes and validate every structural invariant.

    With ``--churn N`` the check also exercises the dynamic paths:
    N objects are deleted and reinserted before the final validation,
    which is where summary-maintenance bugs actually surface.
    """
    from .analysis import check_tree
    from .data.synthetic import make_euro_like
    from .index.kcr_tree import KcRTree
    from .index.setr_tree import SetRTree

    dataset, _ = make_euro_like(args.size, seed=args.seed)
    status = 0
    for cls in (SetRTree, KcRTree):
        tree = cls(dataset, capacity=args.capacity)
        if args.churn:
            victims = dataset.objects[: args.churn]
            for obj in victims:
                tree.delete(obj)
                dataset.remove(obj.oid)
            for obj in victims:
                dataset.add(obj)
                tree.insert(obj)
        # A few accounted fetches so the buffer ledger is non-trivial.
        for _ in range(3):
            tree.root()
        report = check_tree(tree)
        label = "after churn" if args.churn else "bulk-loaded"
        print(f"{cls.__name__} ({label}, {args.size} objects):")
        print(report.format())
        print()
        if not report.ok:
            status = 1
    print("invariants OK" if status == 0 else "INVARIANT VIOLATIONS FOUND")
    return status


def _chaos_serve(args: argparse.Namespace, dataset, baseline, chaotic) -> int:
    """The ``chaos --serve`` leg: the same workload, through the server.

    Replays the query stream as served requests (admission, deadlines,
    breakers) against the chaotic engine and holds the server to the
    same contract as the bare engine: zero crashes (``failed``
    responses) and zero unflagged deviations from the fault-free
    baseline.  A final 4x overload burst checks load-shedding stays
    explicit and the queue stays bounded under fire.
    """
    import asyncio

    import numpy as np

    from . import SpatialKeywordQuery, WhyNotQuestion
    from .serve import (
        STATUS_FAILED,
        STATUS_OK,
        STATUS_REJECTED,
        ServerConfig,
        WhyNotServer,
    )

    rng = np.random.default_rng(args.seed)
    config = ServerConfig(breaker_cooldown=4)
    counters = {
        "crashes": 0,
        "unflagged": 0,
        "degraded": 0,
        "degraded_divergent": 0,
        "answers": 0,
        "shed": 0,
    }

    async def drive() -> dict:
        async with WhyNotServer(chaotic, config) as server:
            for i in range(args.queries):
                seed_obj = dataset.objects[int(rng.integers(0, len(dataset)))]
                doc = frozenset(list(seed_obj.doc)[:3])
                if not doc:
                    continue
                query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=5)
                expected = baseline.top_k(query)
                response = await server.top_k(f"user-{i % 8}", query)
                if response.status == STATUS_FAILED:
                    counters["crashes"] += 1
                    print(f"[CRASH] query {i}: {response.reason}")
                    continue
                outcome = response.result
                if response.status != STATUS_OK or outcome.degraded:
                    counters["degraded"] += 1
                    if outcome.results != expected:
                        counters["degraded_divergent"] += 1
                elif outcome.results != expected:
                    counters["unflagged"] += 1
                    print(f"[DEVIATION] query {i}: unflagged top-k mismatch")

                if args.answer_every and i % args.answer_every == 0:
                    extended = baseline.top_k(query.with_k(21))
                    if len(extended) < 21:
                        continue
                    question = WhyNotQuestion(
                        query, (extended[-1][1],), lam=0.5
                    )
                    base_answer = baseline.answer(question, method=args.method)
                    response = await server.why_not(
                        f"user-{i % 8}", question, method=args.method
                    )
                    if response.status == STATUS_FAILED:
                        counters["crashes"] += 1
                        print(f"[CRASH] answer {i}: {response.reason}")
                        continue
                    counters["answers"] += 1
                    answer = response.result
                    same = (
                        abs(
                            answer.refined.penalty
                            - base_answer.refined.penalty
                        )
                        < 1e-9
                    )
                    if response.status != STATUS_OK or answer.degraded:
                        counters["degraded"] += 1
                        if not same:
                            counters["degraded_divergent"] += 1
                    elif not same:
                        counters["unflagged"] += 1
                        print(
                            f"[DEVIATION] answer {i}: unflagged penalty "
                            "mismatch"
                        )

            # Overload burst: 4x the topk admission bound at once.  The
            # server must shed explicitly, answer everything else, and
            # keep the queue inside its memory bound throughout.
            burst_n = 4 * server.config.limits["topk"]
            seed_obj = dataset.objects[0]
            query = SpatialKeywordQuery(
                loc=seed_obj.loc,
                doc=frozenset(list(seed_obj.doc)[:2]),
                k=5,
            )
            responses = await asyncio.gather(
                *(
                    server.top_k(f"burst-{i % 16}", query)
                    for i in range(burst_n)
                )
            )
            counters["shed"] = sum(
                1 for r in responses if r.status == STATUS_REJECTED
            )
            counters["burst_failed"] = sum(
                1 for r in responses if r.status == STATUS_FAILED
            )
            counters["burst_n"] = burst_n
            counters["queue_bound_ok"] = (
                len(server.admission) <= server.admission.capacity
            )
            return server.health()

    health = asyncio.run(drive())
    print(f"served queries:      {args.queries} (+{counters['answers']} why-not answers)")
    print(f"degraded (flagged):  {counters['degraded']}  [divergent from baseline: {counters['degraded_divergent']}]")
    print(f"unflagged deviations:{counters['unflagged']:>2}")
    print(f"crashes:             {counters['crashes']}")
    print(f"overload burst:      {counters['burst_n']} offered, {counters['shed']} shed "
          f"(queue bounded: {counters['queue_bound_ok']})")
    print(f"health:              {health['status']}  breakers={list(health['breakers']) or 'none'}")
    print(f"responses:           {health['responses']}")
    ok = (
        counters["crashes"] == 0
        and counters["unflagged"] == 0
        and counters["burst_failed"] == 0
        and counters["shed"] > 0
        and counters["queue_bound_ok"]
    )
    print("CHAOS-SERVE OK" if ok else "CHAOS-SERVE FAILED")
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run a query workload under deterministic fault injection.

    Two engines over the same dataset: a fault-free baseline and a
    chaotic one driven by the ``mixed`` fault schedule (transients,
    bit-rot, lost records, torn writes) at ``--intensity`` times the
    preset rates.  Every chaotic answer must either match the baseline
    *exactly* or be flagged degraded; any crash or unflagged deviation
    fails the run.  ``--recover-every`` periodically rebuilds
    quarantined indexes to exercise the recovery path, and the final
    corruption scan uses the same validator as ``check-invariants``.
    """
    import numpy as np

    from . import (
        MIXED,
        FaultInjector,
        ReproError,
        SpatialKeywordQuery,
        WhyNotEngine,
        WhyNotQuestion,
        make_euro_like,
    )

    dataset, _ = make_euro_like(args.size, seed=args.seed)
    schedule = MIXED.scaled(args.intensity)
    injector = FaultInjector(schedule, seed=args.seed)
    baseline = WhyNotEngine(dataset)
    if args.shards:
        # Sharded containment leg: faults are confined to the listed
        # shard(s); the gate below asserts only those shards degrade.
        chaotic = WhyNotEngine(
            dataset,
            faults=injector,
            shards=args.shards,
            shard_mode=args.shard_mode,
            fault_shards=tuple(args.fault_shard) if args.fault_shard else None,
        )
    else:
        chaotic = WhyNotEngine(dataset, faults=injector)
    if getattr(args, "serve", False):
        return _chaos_serve(args, dataset, baseline, chaotic)
    rng = np.random.default_rng(args.seed)

    crashes = 0
    unflagged = 0
    degraded = 0
    degraded_divergent = 0
    answers_checked = 0
    recoveries = 0

    for i in range(args.queries):
        seed_obj = dataset.objects[int(rng.integers(0, len(dataset)))]
        doc = frozenset(list(seed_obj.doc)[:3])
        if not doc:
            continue
        query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=5)
        expected = baseline.top_k(query)
        try:
            outcome = chaotic.run_top_k(query)
        except ReproError as exc:
            crashes += 1
            print(f"[CRASH] query {i}: {type(exc).__name__}: {exc}")
            continue
        if outcome.degraded:
            degraded += 1
            if outcome.results != expected:
                degraded_divergent += 1
        elif outcome.results != expected:
            unflagged += 1
            print(f"[DEVIATION] query {i}: unflagged top-k mismatch")

        if args.answer_every and i % args.answer_every == 0:
            extended = baseline.top_k(query.with_k(21))
            if len(extended) < 21:
                continue
            question = WhyNotQuestion(query, (extended[-1][1],), lam=0.5)
            base_answer = baseline.answer(question, method=args.method)
            try:
                answer = chaotic.answer(question, method=args.method)
            except ReproError as exc:
                crashes += 1
                print(f"[CRASH] answer {i}: {type(exc).__name__}: {exc}")
                continue
            answers_checked += 1
            same = abs(answer.refined.penalty - base_answer.refined.penalty) < 1e-9
            if answer.degraded:
                degraded += 1
                if not same:
                    degraded_divergent += 1
            elif not same:
                unflagged += 1
                print(f"[DEVIATION] answer {i}: unflagged penalty mismatch")

        if (
            args.recover_every
            and (i + 1) % args.recover_every == 0
            and chaotic.quarantined
        ):
            chaotic.recover()
            recoveries += 1

    health = chaotic.health()
    corruption = sum(
        len(report.violations) for report in health["corruption"].values()
    )
    print(f"queries:             {args.queries} (+{answers_checked} why-not answers)")
    print(f"degraded (flagged):  {degraded}  [divergent from baseline: {degraded_divergent}]")
    print(f"unflagged deviations:{unflagged:>2}")
    print(f"crashes:             {crashes}")
    print(f"recoveries:          {recoveries}  (still quarantined: {sorted(health['quarantined']) or 'none'})")
    print(f"injector ledger:     {health['injector']}")
    print(f"live-tree corruption findings: {corruption}")
    ok = crashes == 0 and unflagged == 0
    if args.shards and args.fault_shard:
        # Containment gate: every quarantined subtree must belong to a
        # shard that was allowed to fault.  Keys look like "shard-3:kcr".
        allowed = {f"shard-{tid}" for tid in args.fault_shard}
        escaped = sorted(
            key
            for key in health["quarantined"]
            if key.split(":", 1)[0] not in allowed
        )
        print(f"fault containment:   {'LEAKED ' + str(escaped) if escaped else 'OK'}"
              f"  (allowed: {sorted(allowed)})")
        ok = ok and not escaped
    print("CHAOS OK" if ok else "CHAOS FAILED")
    return 0 if ok else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    from . import (
        Oracle,
        SpatialKeywordQuery,
        WhyNotEngine,
        WhyNotQuestion,
        make_euro_like,
    )

    dataset, vocabulary = make_euro_like(args.size, seed=args.seed)
    engine = WhyNotEngine(dataset)
    oracle = Oracle(dataset)
    seed_obj = dataset.objects[args.seed % len(dataset)]
    keywords = frozenset(list(seed_obj.doc)[:3])
    query = SpatialKeywordQuery(loc=seed_obj.loc, doc=keywords, k=5)
    print(f"initial query: keywords={vocabulary.decode(keywords)} k=5")
    print("top-5 result:", engine.top_k(query))
    missing = oracle.object_at_rank(query, 26)
    print(f"missing object: oid={missing} (rank 26 under the initial query)")
    question = WhyNotQuestion(query, (missing,), lam=0.5)
    for method in ("basic", "advanced", "kcr"):
        answer = engine.answer(question, method=method)
        print(
            f"{answer.algorithm:>11}: {answer.refined.describe(vocabulary)} "
            f"[{answer.elapsed_seconds * 1000:.1f} ms, {answer.io.page_reads} page reads]"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Scripted serving smoke session, exit-code gated.

    Starts a server over a (by default sharded) engine and drives the
    canonical client script: top-k lookups, a why-not refinement
    dialogue that must reuse the session's dominator cache, a forced
    shard quarantine that must walk the breaker through
    open -> half_open -> closed while answers stay exact, and a final
    health check that must report ``ok`` again.
    """
    import asyncio

    from . import (
        Oracle,
        SpatialKeywordQuery,
        TransientIOError,
        WhyNotEngine,
        WhyNotQuestion,
        make_euro_like,
    )
    from .serve import STATUS_DEGRADED, STATUS_OK, ServerConfig, WhyNotServer

    dataset, _ = make_euro_like(args.size, seed=args.seed)
    engine = (
        WhyNotEngine(dataset, shards=args.shards)
        if args.shards
        else WhyNotEngine(dataset)
    )
    oracle = Oracle(dataset)
    seed_obj = dataset.objects[args.seed % len(dataset)]
    query = SpatialKeywordQuery(
        loc=seed_obj.loc, doc=frozenset(list(seed_obj.doc)[:3]), k=5
    )
    missing = oracle.object_at_rank(query, 26)
    question = WhyNotQuestion(query, (missing,), lam=0.5)
    checks: List[tuple] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append((name, ok, detail))
        print(f"  [{'ok' if ok else 'FAIL'}] {name}" + (f"  ({detail})" if detail else ""))

    async def drive() -> None:
        config = ServerConfig(breaker_cooldown=3)
        async with WhyNotServer(engine, config) as server:
            print("client script: top-k + refinement dialogue")
            top = await server.top_k("alice", query)
            check("top-k ok", top.status == STATUS_OK, top.status)
            rounds = []
            for round_no in range(3):
                varied = WhyNotQuestion(
                    query.with_k(5 + round_no), (missing,),
                    lam=min(0.9, 0.5 + 0.1 * round_no),
                )
                rounds.append(
                    await server.why_not("alice", varied, method="advanced")
                )
            hits = server.sessions.snapshot()["cache_hits"]
            check(
                "dialogue answered",
                all(r.status == STATUS_OK for r in rounds),
                ",".join(r.status for r in rounds),
            )
            check("dominator cache reused", hits >= 2, f"{hits} hit(s)")
            check(
                "health ok pre-fault", server.health()["status"] == "ok"
            )

            if engine.is_sharded:
                print("forcing shard quarantine")
                index = engine.sharded_index
                index.mark_down(
                    index.shards[1],
                    "setr",
                    "forced-outage",
                    TransientIOError("smoke-test forced outage"),
                )
                first = await server.top_k("alice", query)
                health = server.health()
                breaker = health["breakers"].get("shard-1:setr", {})
                check(
                    "outage answered degraded",
                    first.status == STATUS_DEGRADED,
                    first.status,
                )
                check(
                    "breaker opened",
                    breaker.get("state") == "open"
                    and health["status"] == "degraded",
                    str(breaker.get("state")),
                )
                seen = {str(breaker.get("state"))}
                last = first
                for _ in range(config.breaker_cooldown + 3):
                    last = await server.top_k("alice", query)
                    state = (
                        server.health()["breakers"]
                        .get("shard-1:setr", {})
                        .get("state")
                    )
                    seen.add(str(state))
                    if state == "closed":
                        break
                check(
                    "breaker walked open->half_open->closed",
                    {"open", "half_open", "closed"} <= seen,
                    "->".join(sorted(seen)),
                )
                check(
                    "recovered to exact ok", last.status == STATUS_OK, last.status
                )
                check(
                    "health ok post-recovery",
                    server.health()["status"] == "ok",
                )
            print(f"final health: {server.health()['responses']}")

    asyncio.run(drive())
    engine.close()
    failed = [name for name, ok, _ in checks if not ok]
    print(
        "SERVE SMOKE OK"
        if not failed
        else f"SERVE SMOKE FAILED: {failed}"
    )
    return 0 if not failed else 1


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Load-generate against the serving layer and report latencies.

    Thousands of simulated users replay over measured ``process_time``
    busy costs in virtual time (the makespan-discount convention), so
    the p50/p99 here are core-count-independent.  ``--burst`` switches
    to the overload scenario (everything arrives at once).
    """
    import statistics

    from . import WhyNotEngine, make_euro_like
    from .experiments.workload import WorkloadGenerator
    from .serve.bench import run_serve_bench

    dataset, _ = make_euro_like(args.size, seed=args.seed)
    engine = WhyNotEngine(dataset)
    generator = WorkloadGenerator(dataset, seed=args.seed)
    cases = generator.generate(
        args.probe_cases, k0=5, n_keywords=3, max_extra_keywords=4
    )
    report = run_serve_bench(
        engine,
        cases,
        n_requests=args.requests,
        users=args.users,
        seed=args.seed,
        workers=args.workers,
        load_factor=args.load,
        burst=args.burst,
    )
    latencies = report.pop("latencies_ms")
    cuts = statistics.quantiles(latencies, n=100)
    report["p50_ms"] = round(cuts[49], 4)
    report["p99_ms"] = round(cuts[98], 4)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.output}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if getattr(args, "full", False):
        os.environ["REPRO_BENCH_FULL"] = "1"

    from .experiments import benchflows

    names = args.figures or sorted(benchflows.FIGURES)
    unknown = [name for name in names if name not in benchflows.FIGURES]
    if unknown:
        print(
            f"unknown figure(s) {unknown}; "
            f"expected among {sorted(benchflows.FIGURES)}"
        )
        return 2
    if not args.emit and not args.check:
        print("nothing to do: pass --emit and/or --check BASELINE_DIR")
        return 2
    out_dir = Path(args.out)
    if args.emit:
        out_dir.mkdir(parents=True, exist_ok=True)
    harness = benchflows.EmitterHarness()
    failures: List[str] = []
    for name in names:
        out_path = out_dir / f"BENCH_{name}.json"
        payload = benchflows.emit_figure(
            name,
            out_path,
            rounds=args.rounds,
            scale=args.scale,
            harness=harness,
            write=args.emit,
        )
        if args.emit:
            print(
                f"wrote {out_path}: {len(payload['units'])} unit(s), "
                f"{len(payload['skipped'])} skipped"
            )
        if args.check:
            baseline_path = Path(args.check) / f"BENCH_{name}.json"
            if not baseline_path.exists():
                failures.append(f"{name}: no baseline at {baseline_path}")
                continue
            with open(baseline_path, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
            for failure in benchflows.compare(
                payload, baseline, tolerance=args.tolerance
            ):
                failures.append(f"{name}: {failure}")
    if args.check:
        if failures:
            print(f"bench gate FAILED ({len(failures)} regression(s)):")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(
            f"bench gate passed: {len(names)} figure(s) within "
            f"+{args.tolerance:.0%} of baseline"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-whynot",
        description="Why-not spatial keyword top-k queries via keyword adaption "
        "(ICDE 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets", help="Table II dataset statistics")
    p_datasets.add_argument("--scale", default="default", choices=sorted(SCALES))
    p_datasets.set_defaults(func=_cmd_datasets)

    p_params = sub.add_parser("params", help="Table III parameter grid")
    p_params.set_defaults(func=_cmd_params)

    p_exp = sub.add_parser(
        "experiment", help="regenerate a figure ('all') or ablation ('ablations')"
    )
    p_exp.add_argument(
        "figure", help="fig4..fig13, ablation-*, 'all', or 'ablations'"
    )
    p_exp.add_argument("--scale", default="default", choices=sorted(SCALES))
    p_exp.add_argument("-o", "--output", help="also write Markdown here")
    p_exp.add_argument(
        "--chart", action="store_true", help="draw terminal bar charts too"
    )
    p_exp.set_defaults(func=_cmd_experiment)

    p_demo = sub.add_parser("demo", help="end-to-end why-not demo")
    p_demo.add_argument("--size", type=int, default=2000)
    p_demo.add_argument("--seed", type=int, default=7)
    p_demo.set_defaults(func=_cmd_demo)

    p_quality = sub.add_parser(
        "quality", help="profile optimal refinements across lambda"
    )
    p_quality.add_argument("--scale", default="default", choices=sorted(SCALES))
    p_quality.set_defaults(func=_cmd_quality)

    p_lint = sub.add_parser(
        "lint", help="run the repo-specific AST lint rules"
    )
    p_lint.add_argument(
        "paths", nargs="+", help="files or directories to lint (e.g. src/repro)"
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_analyze = sub.add_parser(
        "analyze",
        help="unified static analysis: lint + flow contracts + "
        "determinism-taint + resource-lifetime (repro.analysis)",
    )
    p_analyze.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    p_analyze.add_argument(
        "--rules",
        default="flow",
        help="comma-separated rulesets: lint,flow,taint,lifetime "
        "(default: flow)",
    )
    p_analyze.add_argument(
        "--all",
        action="store_true",
        help="run every ruleset plus stale-waiver detection",
    )
    p_analyze.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    p_analyze.add_argument(
        "--signatures",
        action="store_true",
        help="include per-function effect signatures in --json output",
    )
    p_analyze.add_argument(
        "--baseline",
        help="baseline file of known violation keys; only NEW violations fail",
    )
    p_analyze.add_argument(
        "--write-baseline",
        help="write the current unwaived violation keys to this file and exit",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_check = sub.add_parser(
        "check-invariants",
        help="validate SetR/KcR-tree structure and buffer accounting",
    )
    p_check.add_argument("--size", type=int, default=10_000)
    p_check.add_argument("--seed", type=int, default=7)
    p_check.add_argument("--capacity", type=int, default=100)
    p_check.add_argument(
        "--churn",
        type=int,
        default=0,
        help="delete+reinsert this many objects before validating",
    )
    p_check.set_defaults(func=_cmd_check_invariants)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a query workload under fault injection; fail on any "
        "crash or unflagged deviation from the fault-free baseline",
    )
    p_chaos.add_argument("--size", type=int, default=2000)
    p_chaos.add_argument("--seed", type=int, default=7)
    p_chaos.add_argument("--queries", type=int, default=200)
    p_chaos.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="multiplier on the mixed schedule's fault rates",
    )
    p_chaos.add_argument(
        "--answer-every",
        type=int,
        default=25,
        help="also check a why-not answer every N queries (0 = never)",
    )
    p_chaos.add_argument(
        "--recover-every",
        type=int,
        default=50,
        help="rebuild quarantined indexes every N queries (0 = never)",
    )
    p_chaos.add_argument(
        "--method",
        default="kcr",
        help="why-not method for the answer checks",
    )
    p_chaos.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run the chaotic engine over N spatial shards (0 = unsharded)",
    )
    p_chaos.add_argument(
        "--shard-mode",
        default="simulate",
        choices=("simulate", "process"),
        help="per-shard parallelism mode for the sharded engine",
    )
    p_chaos.add_argument(
        "--fault-shard",
        type=int,
        action="append",
        help="confine faults to this shard id (repeatable); enables the "
        "containment gate asserting only listed shards degrade",
    )
    p_chaos.add_argument(
        "--serve",
        action="store_true",
        help="replay the workload through the serving layer (admission, "
        "deadlines, breakers) and gate on the same zero-crash / "
        "zero-unflagged contract plus explicit overload shedding",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="scripted serving smoke session: dialogue cache reuse, forced "
        "shard quarantine, breaker recovery, health transitions",
    )
    p_serve.add_argument("--size", type=int, default=2000)
    p_serve.add_argument("--seed", type=int, default=7)
    p_serve.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count for the served engine (0 = unsharded; disables "
        "the forced-quarantine leg)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_serve_bench = sub.add_parser(
        "serve-bench",
        help="simulated heavy traffic over the serving layer; p50/p99 via "
        "the makespan-discount convention (process_time busy)",
    )
    p_serve_bench.add_argument("--size", type=int, default=1500)
    p_serve_bench.add_argument("--seed", type=int, default=2016)
    p_serve_bench.add_argument("--requests", type=int, default=2000)
    p_serve_bench.add_argument("--users", type=int, default=300)
    p_serve_bench.add_argument("--workers", type=int, default=4)
    p_serve_bench.add_argument(
        "--load",
        type=float,
        default=0.65,
        help="offered load as a fraction of fleet capacity",
    )
    p_serve_bench.add_argument(
        "--probe-cases",
        type=int,
        default=3,
        help="workload cases measured for real to calibrate service costs",
    )
    p_serve_bench.add_argument(
        "--burst",
        action="store_true",
        help="overload scenario: all requests arrive at one instant",
    )
    p_serve_bench.add_argument("-o", "--output", help="also write JSON here")
    p_serve_bench.set_defaults(func=_cmd_serve_bench)

    p_bench = sub.add_parser(
        "bench",
        help="figure benchmark emitters (BENCH_fig*.json) and the "
        ">10%% p50 regression gate",
    )
    p_bench.add_argument(
        "--emit", action="store_true", help="write BENCH_fig*.json files"
    )
    p_bench.add_argument(
        "--check",
        metavar="BASELINE_DIR",
        help="compare against checked-in baselines; non-zero exit on "
        "regression",
    )
    p_bench.add_argument(
        "--figures",
        nargs="*",
        help="subset of figures (default: all), e.g. fig04 fig13",
    )
    p_bench.add_argument("--out", default=".", help="output directory")
    p_bench.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="timing rounds per unit",
    )
    p_bench.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed normalized p50 regression (0.10 = +10%%)",
    )
    p_bench.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="inflate recorded latencies by this factor (negative "
        "control for the gate; scaled payloads are stamped)",
    )
    p_bench.add_argument(
        "--full",
        action="store_true",
        help="run the full-size sharded scalability sweep (1M+ objects, "
        "process mode); equivalent to REPRO_BENCH_FULL=1",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_verify = sub.add_parser(
        "verify", help="cross-check all exact algorithms against brute force"
    )
    p_verify.add_argument("--size", type=int, default=800)
    p_verify.add_argument("--seed", type=int, default=11)
    p_verify.add_argument("--trials", type=int, default=5)
    p_verify.set_defaults(func=_cmd_verify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
