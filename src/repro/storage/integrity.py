"""Checksums and crash-safe file persistence.

Two integrity surfaces share this module:

* **Pager records.**  Every simulated-disk record carries a checksum
  stamp, verified on every read.  Because record payloads are live
  Python objects (serialisation is a byte-size model — see
  :mod:`repro.storage.pager`), the checksum is likewise a *stamp
  model*: a CRC of the record's identity, write sequence number, and
  byte size, recomputed from the record's metadata at read time.
  Injected corruption (bit-rot, torn writes) flips the *stored* stamp,
  exactly as flipped payload bits would break a real content hash, and
  verification catches it without ever producing the false positives a
  content hash over aliased mutable objects would.

* **Persisted JSON files.**  Dataset and index files get a real
  content checksum (CRC-32 of the canonical JSON body) plus
  crash-safe atomic replacement: the writer lands the bytes in a
  temporary file in the same directory, flushes and fsyncs, then
  ``os.replace``\\ s it over the destination — a crash at any point
  leaves either the old complete file or the new complete file, never
  a torn hybrid.  The loader detects truncation/partial writes (JSON
  parse failure), checksum mismatches, and unknown format versions,
  and raises :class:`repro.errors.PersistenceError` with a recovery
  hint instead of a raw decoder traceback.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, Sequence, Union

from ..errors import PersistenceError

__all__ = [
    "record_stamp",
    "body_checksum",
    "atomic_write_text",
    "save_checked_json",
    "load_checked_json",
]

PathLike = Union[str, Path]

_CHECKSUM_KEY = "checksum"
_VERSION_KEY = "format_version"


# ----------------------------------------------------------------------
# pager record stamps
# ----------------------------------------------------------------------
def record_stamp(record_id: int, write_seq: int, nbytes: int) -> int:
    """Checksum stamp for one pager record write.

    Deterministic in (record id, write sequence, size) so a re-read of
    an intact record always re-derives the stored value, and any two
    distinct writes of the same record stamp differently.
    """
    return zlib.crc32(f"{record_id}:{write_seq}:{nbytes}".encode("ascii"))


# ----------------------------------------------------------------------
# file-level checksummed JSON
# ----------------------------------------------------------------------
def body_checksum(body: Dict[str, Any]) -> int:
    """CRC-32 of the canonical JSON encoding of ``body``.

    ``body`` must exclude the checksum field itself; keys are sorted so
    the value is independent of dict insertion order.
    """
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` via temp-file + fsync + ``os.replace``.

    The temporary file lives in the destination directory (rename is
    only atomic within a filesystem) and is removed on failure, so a
    crash never leaves a half-written destination or a stray temp.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def save_checked_json(
    path: PathLike, body: Dict[str, Any], *, version: int
) -> None:
    """Atomically persist ``body`` with format version and checksum."""
    payload = dict(body)
    payload[_VERSION_KEY] = version
    payload[_CHECKSUM_KEY] = body_checksum(
        {k: v for k, v in payload.items() if k != _CHECKSUM_KEY}
    )
    atomic_write_text(path, json.dumps(payload))


def load_checked_json(
    path: PathLike,
    *,
    kind: str,
    supported_versions: Sequence[int],
    checksum_required_from: int,
) -> Dict[str, Any]:
    """Load a checksummed JSON document, verifying integrity.

    ``kind`` names the artifact ("dataset", "index") in error messages.
    Versions below ``checksum_required_from`` predate checksumming and
    are accepted without one (legacy files stay loadable).  Raises
    :class:`PersistenceError` with a recovery hint on truncation,
    version mismatch, or checksum mismatch.
    """
    target = Path(path)
    try:
        text = target.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise PersistenceError(
            f"{kind} file {target} does not exist; "
            "check the path or re-save the artifact"
        ) from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(
            f"{kind} file {target} is not valid JSON ({exc.msg} at "
            f"line {exc.lineno}): the file is truncated or was torn by a "
            "crash mid-write. Recovery: restore from backup or re-save "
            "from the in-memory structures (saves are atomic, so this "
            "file predates the atomic writer or was edited by hand)."
        ) from None
    if not isinstance(payload, dict):
        raise PersistenceError(
            f"{kind} file {target} does not hold a JSON object; "
            "it was not written by this library. Recovery: re-save."
        )
    version = payload.get(_VERSION_KEY)
    if version not in supported_versions:
        raise PersistenceError(
            f"{kind} file {target} has unsupported format version "
            f"{version!r}; this build reads versions "
            f"{sorted(supported_versions)}. Recovery: re-save with this "
            "library version, or upgrade the library to one that reads "
            f"version {version!r}."
        )
    stored = payload.get(_CHECKSUM_KEY)
    if stored is None:
        if version >= checksum_required_from:
            raise PersistenceError(
                f"{kind} file {target} (format version {version}) is "
                "missing its checksum field; the file was tampered with "
                "or truncated at the tail. Recovery: restore from backup "
                "or re-save."
            )
        return payload
    actual = body_checksum(
        {k: v for k, v in payload.items() if k != _CHECKSUM_KEY}
    )
    if stored != actual:
        raise PersistenceError(
            f"{kind} file {target} failed checksum verification "
            f"(stored {stored}, computed {actual}): the payload was "
            "corrupted after writing. Recovery: restore from backup or "
            "re-save from the in-memory structures."
        )
    return payload
