"""Slotted-page packing for small records.

Object keyword sets are tiny (a handful of 4-byte term ids); giving
each its own 4 KB page would inflate the I/O metric and distort the
buffer-pressure ratio.  Real systems — and the paper's layout, which
stores keyword payloads "sequentially on disk" — pack many small
records into shared pages.  :class:`PackedWriter` does exactly that:
consecutive ``add`` calls fill one page until it is full, then start a
new one.  The tree builder flushes the writer per leaf node, so the
keyword sets of one leaf's objects land on the same page(s) and a leaf
scan costs one or two page reads instead of a hundred.

A packed record is addressed by a :class:`SlotRef` = (page record id,
slot); fetching any slot pulls the whole page through the buffer pool,
which is precisely the locality a slotted page gives on real disks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import StorageError
from .buffer_pool import BufferPool
from .pager import Pager

__all__ = ["SlotRef", "PackedWriter", "fetch_slot"]

#: What :class:`PackedWriter` writes through — only ``page_size`` and
#: ``allocate`` are used, which both expose identically.  Index code
#: hands in the :class:`BufferPool` so packed page writes get the
#: pool's transient-fault retry protection.
PackStore = Union[Pager, BufferPool]


@dataclass(frozen=True)
class SlotRef:
    """Address of a packed record: pager record id + slot index."""

    record: int
    slot: int


class PackedWriter:
    """Accumulates small payloads into shared pages."""

    def __init__(self, store: PackStore) -> None:
        self.store = store
        self._payloads: List[Any] = []
        self._sizes: List[int] = []
        self._pending: List[int] = []  # bytes per pending payload
        self._pending_bytes = 0
        self._refs: List[Optional[SlotRef]] = []

    def add(self, payload: Any, nbytes: int) -> int:
        """Queue a payload; returns its index for post-flush resolution."""
        if nbytes < 0:
            raise StorageError(f"record size must be non-negative, got {nbytes}")
        if nbytes > self.store.page_size:
            raise StorageError(
                f"packed records must fit in one page "
                f"({nbytes} > {self.store.page_size}); allocate directly instead"
            )
        if self._pending_bytes + nbytes > self.store.page_size and self._payloads:
            self._flush_page()
        index = len(self._refs)
        self._refs.append(None)
        self._payloads.append((index, payload))
        self._pending_bytes += nbytes
        return index

    def flush(self) -> None:
        """Seal the current page (called at each leaf-node boundary)."""
        if self._payloads:
            self._flush_page()

    def ref(self, index: int) -> SlotRef:
        """Resolve a queued payload's final address (after flush)."""
        ref = self._refs[index]
        if ref is None:
            raise StorageError(f"payload {index} not flushed yet")
        return ref

    def _flush_page(self) -> None:
        slots = [payload for _, payload in self._payloads]
        record_id = self.store.allocate(tuple(slots), self._pending_bytes)
        for slot, (index, _) in enumerate(self._payloads):
            self._refs[index] = SlotRef(record=record_id, slot=slot)
        self._payloads = []
        self._pending_bytes = 0


def fetch_slot(buffer: BufferPool, ref: SlotRef) -> Any:
    """Read one packed record through the buffer pool.

    Charges the page on a miss; subsequent slots of the same page are
    buffer hits — the locality benefit packing exists to model.
    """
    page = buffer.fetch(ref.record)
    try:
        return page[ref.slot]
    except (TypeError, IndexError):
        raise StorageError(
            f"record {ref.record} slot {ref.slot} is not a valid packed slot"
        ) from None
