"""I/O accounting.

The paper's evaluation reports two metrics: query time and "the number
of I/Os" (Section VII-A1).  :class:`IOStatistics` is the single
counter object the storage layer feeds; the experiment harness
snapshots it around each why-not query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOStatistics", "IOSnapshot"]


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable copy of the counters at one instant."""

    page_reads: int
    page_writes: int
    buffer_hits: int
    node_fetches: int

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            page_reads=self.page_reads - other.page_reads,
            page_writes=self.page_writes - other.page_writes,
            buffer_hits=self.buffer_hits - other.buffer_hits,
            node_fetches=self.node_fetches - other.node_fetches,
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            page_reads=self.page_reads + other.page_reads,
            page_writes=self.page_writes + other.page_writes,
            buffer_hits=self.buffer_hits + other.buffer_hits,
            node_fetches=self.node_fetches + other.node_fetches,
        )

    @property
    def total_ios(self) -> int:
        """Page reads plus writes — the paper's "number of I/Os"."""
        return self.page_reads + self.page_writes


@dataclass
class IOStatistics:
    """Mutable I/O counters shared by a pager and its buffer pool.

    ``page_reads``/``page_writes`` count 4 KB page transfers that went
    to the simulated disk; ``buffer_hits`` counts fetches satisfied by
    the buffer pool; ``node_fetches`` counts logical node accesses
    regardless of caching (useful for algorithmic comparisons that
    should not depend on buffer luck).
    """

    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    node_fetches: int = 0

    def snapshot(self) -> IOSnapshot:
        """Immutable copy of the counters (subtract pairs for deltas)."""
        return IOSnapshot(
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            buffer_hits=self.buffer_hits,
            node_fetches=self.node_fetches,
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.page_reads = 0
        self.page_writes = 0
        self.buffer_hits = 0
        self.node_fetches = 0

    @property
    def total_ios(self) -> int:
        return self.page_reads + self.page_writes
