"""I/O accounting.

The paper's evaluation reports two metrics: query time and "the number
of I/Os" (Section VII-A1).  :class:`IOStatistics` is the single
counter object the storage layer feeds; the experiment harness
snapshots it around each why-not query.

The fault-tolerance layer adds a second family of counters — retries,
transient faults, checksum failures, lost records — kept separate from
the page counters so the paper's I/O metric stays exactly what it was:
a retried read that eventually succeeds charges its pages once, and a
failed transfer charges nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOStatistics", "IOSnapshot"]


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable copy of the counters at one instant."""

    page_reads: int
    page_writes: int
    buffer_hits: int
    node_fetches: int
    read_retries: int = 0
    write_retries: int = 0
    transient_faults: int = 0
    checksum_failures: int = 0
    lost_records: int = 0
    deadline_aborts: int = 0

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            page_reads=self.page_reads - other.page_reads,
            page_writes=self.page_writes - other.page_writes,
            buffer_hits=self.buffer_hits - other.buffer_hits,
            node_fetches=self.node_fetches - other.node_fetches,
            read_retries=self.read_retries - other.read_retries,
            write_retries=self.write_retries - other.write_retries,
            transient_faults=self.transient_faults - other.transient_faults,
            checksum_failures=self.checksum_failures - other.checksum_failures,
            lost_records=self.lost_records - other.lost_records,
            deadline_aborts=self.deadline_aborts - other.deadline_aborts,
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            page_reads=self.page_reads + other.page_reads,
            page_writes=self.page_writes + other.page_writes,
            buffer_hits=self.buffer_hits + other.buffer_hits,
            node_fetches=self.node_fetches + other.node_fetches,
            read_retries=self.read_retries + other.read_retries,
            write_retries=self.write_retries + other.write_retries,
            transient_faults=self.transient_faults + other.transient_faults,
            checksum_failures=self.checksum_failures + other.checksum_failures,
            lost_records=self.lost_records + other.lost_records,
            deadline_aborts=self.deadline_aborts + other.deadline_aborts,
        )

    @property
    def total_ios(self) -> int:
        """Page reads plus writes — the paper's "number of I/Os"."""
        return self.page_reads + self.page_writes

    @property
    def total_faults(self) -> int:
        """Faults *detected* at this snapshot (injection counts live on
        the :class:`~repro.storage.faults.FaultInjector`)."""
        return self.transient_faults + self.checksum_failures + self.lost_records


@dataclass
class IOStatistics:
    """Mutable I/O counters shared by a pager and its buffer pool.

    ``page_reads``/``page_writes`` count 4 KB page transfers that went
    to the simulated disk; ``buffer_hits`` counts fetches satisfied by
    the buffer pool; ``node_fetches`` counts logical node accesses
    regardless of caching (useful for algorithmic comparisons that
    should not depend on buffer luck).

    Fault-layer counters: ``read_retries``/``write_retries`` count
    buffer-pool retry attempts after transient faults;
    ``transient_faults`` counts the transient errors the pager raised;
    ``checksum_failures`` counts reads that failed verification;
    ``lost_records`` counts records that vanished from the disk;
    ``deadline_aborts`` counts retry loops cut short because the
    governing request deadline (:mod:`repro.storage.deadline`) expired
    before the schedule was exhausted.
    """

    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    node_fetches: int = 0
    read_retries: int = 0
    write_retries: int = 0
    transient_faults: int = 0
    checksum_failures: int = 0
    lost_records: int = 0
    deadline_aborts: int = 0

    def snapshot(self) -> IOSnapshot:
        """Immutable copy of the counters (subtract pairs for deltas)."""
        return IOSnapshot(
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            buffer_hits=self.buffer_hits,
            node_fetches=self.node_fetches,
            read_retries=self.read_retries,
            write_retries=self.write_retries,
            transient_faults=self.transient_faults,
            checksum_failures=self.checksum_failures,
            lost_records=self.lost_records,
            deadline_aborts=self.deadline_aborts,
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.page_reads = 0
        self.page_writes = 0
        self.buffer_hits = 0
        self.node_fetches = 0
        self.read_retries = 0
        self.write_retries = 0
        self.transient_faults = 0
        self.checksum_failures = 0
        self.lost_records = 0
        self.deadline_aborts = 0

    @property
    def total_ios(self) -> int:
        return self.page_reads + self.page_writes
