"""LRU buffer pool over the simulated pager.

The paper's experiments run with a 4 MB buffer over 4 KB pages
(Section VII-A1), i.e. 1024 buffered pages.  The pool caches whole
records (a record spans one or more consecutive pages; see
:mod:`repro.storage.pager`) and accounts capacity in pages, so a
three-page keyword payload consumes three page frames.

Eviction is strict LRU on record granularity.  Records larger than the
entire pool are read through without being cached — they would
otherwise evict everything for no benefit.

The pool is also the **only sanctioned page-I/O surface outside this
package**: the ``pager-access`` lint rule (:mod:`repro.analysis.lint`)
forbids direct :class:`Pager` method calls elsewhere, so every read
goes through :meth:`fetch` and every write through the
:meth:`allocate` / :meth:`update` / :meth:`free` write-through methods
(which keep the cache coherent by invalidating on mutation).  That
discipline is what keeps the paper's VII-A1 I/O counters honest.

The pool is also the **fault-tolerance boundary** of the storage
layer: transient faults raised by the pager
(:class:`~repro.errors.TransientIOError`) are retried here with a
bounded, deterministic backoff schedule (:data:`RETRY_LIMIT` attempts,
delays from :data:`BACKOFF_SCHEDULE`) on both the read and the
write-through paths, with every retry counted in
``IOStatistics.read_retries`` / ``write_retries``.  Terminal faults —
checksum mismatches, lost records — pass through untouched; deciding
what to do about those is the engine's job (quarantine + degradation),
not the cache's.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Optional, TypeVar

from ..errors import StorageError, TransientIOError
from .deadline import current_deadline
from .faults import FaultInjector
from .pager import PAGE_SIZE, Pager
from .stats import IOStatistics

__all__ = ["BufferPool", "DEFAULT_BUFFER_BYTES", "RETRY_LIMIT", "BACKOFF_SCHEDULE"]

_T = TypeVar("_T")

DEFAULT_BUFFER_BYTES = 4 * 1024 * 1024
"""Default buffer size, matching the paper's 4 MB."""

RETRY_LIMIT = 4
"""Attempts per page transfer (1 initial + 3 retries).  One more than
the injector's default consecutive-transient cap, so schedule-conform
transients always recover deterministically."""

BACKOFF_SCHEDULE = (0.0005, 0.001, 0.002)
"""Seconds slept before retry *n* — a fixed doubling schedule rather
than a jittered one, so fault runs replay identically."""


class BufferPool:
    """Page-accounted LRU cache in front of a :class:`Pager`."""

    def __init__(
        self, pager: Pager, capacity_bytes: int = DEFAULT_BUFFER_BYTES
    ) -> None:
        if capacity_bytes < 0:
            raise StorageError(
                f"buffer capacity must be non-negative, got {capacity_bytes}"
            )
        self.pager = pager
        self.capacity_pages = capacity_bytes // pager.page_size
        self._frames: "OrderedDict[int, int]" = OrderedDict()  # record id -> span
        self._used_pages = 0
        # Pool-local fetch accounting, checked by the invariant
        # sanitizer: every fetch is exactly one hit or one miss.
        self.fetch_count = 0
        self.hit_count = 0
        self.miss_count = 0
        # The parallel mode (Section IV-C4 / Fig 10) shares one pool
        # across worker threads; the lock keeps the LRU bookkeeping
        # consistent.  Uncontended acquisition is cheap enough to keep
        # unconditionally.
        self._lock = threading.RLock()

    @classmethod
    def create(
        cls,
        *,
        page_size: int = PAGE_SIZE,
        capacity_bytes: int = DEFAULT_BUFFER_BYTES,
        stats: Optional[IOStatistics] = None,
        faults: Optional[FaultInjector] = None,
    ) -> "BufferPool":
        """Build a pool over a fresh :class:`Pager` in one call.

        This is how code outside :mod:`repro.storage` obtains a storage
        substrate without ever constructing (and thus being tempted to
        call) a :class:`Pager` directly.  ``faults`` attaches a seeded
        :class:`~repro.storage.faults.FaultInjector` to the fresh pager;
        ``None`` (the default) leaves injection off entirely.
        """
        return cls(
            Pager(page_size=page_size, stats=stats, faults=faults),
            capacity_bytes,
        )

    @property
    def stats(self) -> IOStatistics:
        return self.pager.stats

    @property
    def used_pages(self) -> int:
        return self._used_pages

    @property
    def total_pages(self) -> int:
        """Pages allocated on the underlying simulated disk."""
        return self.pager.total_pages

    @property
    def page_size(self) -> int:
        return self.pager.page_size

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._frames

    def fetch(self, record_id: int) -> Any:
        """Return a record's payload, through the cache.

        A hit bumps the record to most-recently-used and charges no
        I/O; a miss charges the record's full page span and caches it,
        evicting LRU records until it fits.
        """
        with self._lock:
            self.fetch_count += 1
            span = self._frames.get(record_id)
            if span is not None:
                self._frames.move_to_end(record_id)
                self.hit_count += 1
                self.stats.buffer_hits += 1
                return self.pager.peek(record_id)

            self.miss_count += 1
            # charges the span on success; transient faults are retried
            payload = self._retry(
                "read_retries", lambda: self.pager.read(record_id)
            )
            span = self.pager.span(record_id)
            if span <= self.capacity_pages:
                self._make_room(span)
                self._frames[record_id] = span
                self._used_pages += span
            return payload

    def peek(self, record_id: int) -> Any:
        """Return a record's payload without charging I/O or touching LRU.

        For diagnostics only (the invariant sanitizer walks whole trees
        and must not distort the experiment counters); algorithms go
        through :meth:`fetch`.
        """
        return self.pager.peek(record_id)

    def span(self, record_id: int) -> int:
        """Pages the record occupies on disk (no I/O charged)."""
        return self.pager.span(record_id)

    def exists(self, record_id: int) -> bool:
        """Whether the record is live on the underlying pager.

        (``record_id in pool`` asks the *cache*; this asks the disk.)
        """
        return record_id in self.pager

    def cached_records(self) -> "OrderedDict[int, int]":
        """Snapshot of the cache: record id -> page span (LRU order).

        Exposed for the buffer-accounting invariant checks in
        :mod:`repro.analysis.sanitize`.
        """
        with self._lock:
            return OrderedDict(self._frames)

    # ------------------------------------------------------------------
    # write-through mutation (cache-coherent pager pass-throughs)
    # ------------------------------------------------------------------
    def allocate(self, payload: Any, nbytes: int) -> int:
        """Allocate a new record on the underlying pager (write I/O)."""
        return self._retry(
            "write_retries", lambda: self.pager.allocate(payload, nbytes)
        )

    def update(self, record_id: int, payload: Any, nbytes: int) -> None:
        """Overwrite a record and drop any cached copy of it."""
        with self._lock:
            self._retry(
                "write_retries",
                lambda: self.pager.update(record_id, payload, nbytes),
            )
            self.invalidate(record_id)

    def free(self, record_id: int) -> None:
        """Release a record and drop any cached copy of it."""
        with self._lock:
            self.pager.free(record_id)
            self.invalidate(record_id)

    def invalidate(self, record_id: int) -> None:
        """Drop a record from the cache (after an update or free)."""
        with self._lock:
            span = self._frames.pop(record_id, None)
            if span is not None:
                self._used_pages -= span

    def clear(self) -> None:
        """Empty the pool — used between experiment repetitions so each
        query starts cold, the way the paper averages fresh queries."""
        with self._lock:
            self._frames.clear()
            self._used_pages = 0

    def _retry(self, counter: str, fn: Callable[[], _T]) -> _T:
        """Run one page transfer, retrying transient faults.

        At most :data:`RETRY_LIMIT` attempts, sleeping the fixed
        :data:`BACKOFF_SCHEDULE` delay between them; each re-attempt
        bumps ``stats.read_retries`` or ``stats.write_retries``.  The
        final transient escapes as-is — by then the fault is effectively
        terminal for this operation.  Non-transient storage errors
        (corruption, missing records) are never retried.

        A request deadline (:func:`~repro.storage.deadline.current_deadline`)
        bounds the loop from outside: once the budget is spent there is
        no point finishing the backoff schedule for a request nobody is
        waiting on, so the transient is re-raised immediately (counted
        in ``stats.deadline_aborts``) and any remaining sleep is capped
        at the budget left.  With no deadline installed the behaviour
        is byte-identical to the pre-deadline retry loop.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except TransientIOError:
                attempt += 1
                if attempt >= RETRY_LIMIT:
                    raise
                deadline = current_deadline()
                if deadline is not None and deadline.expired():
                    self.stats.deadline_aborts += 1
                    raise TransientIOError(
                        f"deadline expired after {attempt} attempt(s); "
                        "abandoning retry schedule"
                    )
                setattr(
                    self.stats, counter, getattr(self.stats, counter) + 1
                )
                delay = BACKOFF_SCHEDULE[min(attempt - 1, len(BACKOFF_SCHEDULE) - 1)]
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline.remaining()))
                time.sleep(delay)

    def _make_room(self, span: int) -> None:
        while self._used_pages + span > self.capacity_pages and self._frames:
            _, evicted_span = self._frames.popitem(last=False)
            self._used_pages -= evicted_span
