"""Byte-size model for on-disk index structures.

The simulated pager needs a byte count per record to derive page
spans.  These estimates mirror a straightforward binary layout of the
paper's structures:

* R-tree entry: object/child id (8 B) + MBR (4 × 8 B doubles) +
  payload pointer (8 B) = 48 B; node header 16 B.
* Keyword set payload: 4 B per interned keyword id.  SetR-tree non-leaf
  nodes store the union and intersection sets "sequentially on disk"
  (Section IV-B), so the two ship as one record whose size is the sum.
* Keyword-count map (KcR-tree): 4 B keyword id + 4 B count per entry,
  plus an 8 B ``cnt`` header.

Only the resulting page spans matter for the reproduced I/O metric;
the constants here are deliberately simple and centralised so a reader
can audit the I/O model in one place.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = [
    "ENTRY_BYTES",
    "NODE_HEADER_BYTES",
    "KEYWORD_ID_BYTES",
    "KEYWORD_COUNT_BYTES",
    "PACKED_LEAF_HEADER_BYTES",
    "node_bytes",
    "keyword_set_bytes",
    "set_pair_bytes",
    "keyword_count_map_bytes",
    "packed_leaf_bytes",
]

ENTRY_BYTES = 48
NODE_HEADER_BYTES = 16
KEYWORD_ID_BYTES = 4
KEYWORD_COUNT_BYTES = 8  # 4 B id + 4 B count


def node_bytes(fanout: int) -> int:
    """Bytes of a tree node holding ``fanout`` entries."""
    return NODE_HEADER_BYTES + fanout * ENTRY_BYTES


def keyword_set_bytes(size: int) -> int:
    """Bytes of a serialised keyword set of ``size`` terms."""
    return max(KEYWORD_ID_BYTES, size * KEYWORD_ID_BYTES)


def set_pair_bytes(union_size: int, intersection_size: int) -> int:
    """Bytes of a SetR-tree union+intersection payload (one record).

    Stored sequentially as the paper prescribes, so a single record —
    one disk seek — covers both sets.
    """
    return keyword_set_bytes(union_size) + keyword_set_bytes(intersection_size)


def keyword_count_map_bytes(entries: int) -> int:
    """Bytes of a KcR-tree keyword-count map with ``entries`` keys."""
    return 8 + max(KEYWORD_COUNT_BYTES, entries * KEYWORD_COUNT_BYTES)


PACKED_LEAF_HEADER_BYTES = 16
"""Object count + mask width header of a packed columnar leaf block."""


def packed_leaf_bytes(n_objects: int, n_blocks: int) -> int:
    """Bytes of a packed columnar leaf block.

    Per object: id (8 B) + x/y coordinates (2 × 8 B doubles) + document
    length (8 B) + the keyword bitmask row (``n_blocks`` × 8 B).  The
    block is a derived mirror of data already stored elsewhere (entry
    locations, packed keyword-set pages), so reads of it charge no
    buffer-pool I/O — but it still occupies honest disk pages, which is
    why its size participates in the byte model.
    """
    per_object = 8 + 16 + 8 + n_blocks * 8
    return PACKED_LEAF_HEADER_BYTES + max(per_object, n_objects * per_object)
