"""Request deadlines, propagated into the storage retry loop.

The serving layer (:mod:`repro.serve`) gives every request a budget.
A budget is useless if a single unlucky page transfer can burn the
whole :data:`~repro.storage.buffer_pool.RETRY_LIMIT` backoff schedule
after the request has already missed its deadline — the queue behind
it stalls for nothing.  This module is the thin contract between the
two layers: the server opens a :func:`deadline_scope` around request
execution, and :class:`~repro.storage.buffer_pool.BufferPool` consults
:func:`current_deadline` between retry attempts, aborting early with a
:class:`~repro.errors.TransientIOError` once the budget is spent.

The deadline is carried in a :class:`contextvars.ContextVar` rather
than threaded through every call signature, because the distance
between the two parties is the entire engine: query execution descends
through trees, searchers, and the buffer pool without any of those
layers needing to know a deadline exists.  ``ContextVar`` values do
not leak across threads — a scope must be opened *in the thread that
executes the request* (the server's worker does exactly that), and
code that never opens a scope sees ``None`` and behaves exactly as
before this module existed.

Deadlines are measured on :func:`time.monotonic`.  They bound *real
elapsed time* — a user-facing latency promise — and are therefore
deliberately outside the makespan-discount convention used for
*reported figures* (`process_time` busy accounting); a deadline that
ignored sleep/backoff time would not bound anything a client can
observe.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from typing import Iterator, Optional

from ..errors import InvalidParameterError

__all__ = ["Deadline", "current_deadline", "deadline_scope"]


class Deadline:
    """An absolute expiry instant on the monotonic clock."""

    __slots__ = ("expires_at",)

    def __init__(self, budget_seconds: float) -> None:
        if budget_seconds < 0:
            raise InvalidParameterError(
                f"deadline budget must be non-negative, got {budget_seconds}"
            )
        self.expires_at = time.monotonic() + budget_seconds

    @classmethod
    def at(cls, expires_at: float) -> "Deadline":
        """Wrap an absolute ``time.monotonic`` instant."""
        deadline = cls(0.0)
        deadline.expires_at = expires_at
        return deadline

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(remaining={self.remaining():.4f}s)"


_CURRENT: ContextVar[Optional[Deadline]] = ContextVar(
    "repro_storage_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The deadline governing the current context, or ``None``."""
    return _CURRENT.get()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` for the duration of the ``with`` block.

    ``None`` is accepted and installs "no deadline", which lets callers
    pass an optional budget straight through without branching.  Scopes
    nest; the inner scope wins until it exits.
    """
    token: Token[Optional[Deadline]] = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)
