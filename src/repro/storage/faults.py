"""Deterministic fault injection for the simulated disk.

The ROADMAP's north star is a serving-scale system, and at serving
scale storage faults are a matter of *when*, not *if*.  This module is
the *injection* half of the repo's fault story (detection lives in the
pager's checksums and :mod:`repro.analysis.sanitize`; tolerance in the
buffer pool's retries and :class:`repro.core.engine.WhyNotEngine`'s
graceful degradation): a seeded :class:`FaultInjector` that the
:class:`~repro.storage.pager.Pager` consults on every read and write
and that decides, deterministically, when the simulated hardware
misbehaves.

Fault classes (all rates are per-operation probabilities):

``transient_read_rate`` / ``transient_write_rate``
    The transfer fails with :class:`repro.errors.TransientIOError` but
    the disk is undamaged — a retry can succeed.  The injector bounds
    consecutive transients per record at
    ``max_consecutive_transients`` so the buffer pool's bounded retry
    deterministically recovers unless the schedule is configured to
    exceed the retry budget.
``bit_rot_rate``
    On read, the record's payload silently rots *before* the transfer:
    its stored checksum stops matching and this and every later read
    raises :class:`repro.errors.CorruptRecordError`.
``lost_record_rate``
    On read, the record vanishes from the disk entirely —
    :class:`repro.errors.RecordNotFoundError`, permanently.
``torn_write_rate``
    A *multi-page* write (span > 1) is torn mid-record: the write
    "succeeds" but the record is left corrupt, detected by checksum on
    the next read.  Single-page writes are atomic, as on real disks.

Schedules compose with ``|`` (rates add, caps take the more hostile
value), so test suites can layer, e.g., a transient-noise baseline
with a targeted bit-rot schedule.  ``FaultInjector.from_env()`` builds
an injector from the ``REPRO_FAULTS`` environment variable — the test
suite's standing chaos hook (see ``tests/conftest.py``):

* ``REPRO_FAULTS=1`` / ``transient`` — transient-only noise that the
  retry layer must fully absorb (the whole suite still passes);
* ``REPRO_FAULTS=mixed`` — the full mixed schedule (for the chaos
  verb and the dedicated fault property tests);
* ``REPRO_FAULTS=read=0.02,write=0.01,rot=0.001,lost=0.001,torn=0.01,seed=7``
  — explicit rates.

Determinism: decisions come from a private ``random.Random`` seeded at
construction, consumed once per faultable operation, so a fixed seed
plus a fixed operation sequence replays the exact same fault history.
``fork(label)`` derives an independent child injector (seeded from the
parent seed and the label), letting one logical schedule drive several
pagers without their operation interleaving perturbing each other.
"""

from __future__ import annotations

import os
import random
import threading
import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..errors import StorageError

__all__ = [
    "FaultSchedule",
    "FaultInjector",
    "ReadAction",
    "WriteAction",
    "TRANSIENT_ONLY",
    "MIXED",
    "FAULTS_ENV_VAR",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"
FAULTS_SEED_ENV_VAR = "REPRO_FAULTS_SEED"

# Actions the pager interprets; plain strings keep the hot path cheap.
ReadAction = str  # "ok" | "transient" | "rot" | "lose"
WriteAction = str  # "ok" | "transient" | "torn"


@dataclass(frozen=True)
class FaultSchedule:
    """One composable set of per-operation fault rates."""

    transient_read_rate: float = 0.0
    transient_write_rate: float = 0.0
    bit_rot_rate: float = 0.0
    lost_record_rate: float = 0.0
    torn_write_rate: float = 0.0
    max_consecutive_transients: int = 2

    def __post_init__(self) -> None:
        for name in (
            "transient_read_rate",
            "transient_write_rate",
            "bit_rot_rate",
            "lost_record_rate",
            "torn_write_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise StorageError(f"{name} must lie in [0, 1], got {value}")
        if self.max_consecutive_transients < 1:
            raise StorageError(
                "max_consecutive_transients must be >= 1, got "
                f"{self.max_consecutive_transients}"
            )

    def __or__(self, other: "FaultSchedule") -> "FaultSchedule":
        """Compose two schedules: rates add (capped at 1), the more
        hostile consecutive-transient cap wins."""
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return FaultSchedule(
            transient_read_rate=min(
                1.0, self.transient_read_rate + other.transient_read_rate
            ),
            transient_write_rate=min(
                1.0, self.transient_write_rate + other.transient_write_rate
            ),
            bit_rot_rate=min(1.0, self.bit_rot_rate + other.bit_rot_rate),
            lost_record_rate=min(
                1.0, self.lost_record_rate + other.lost_record_rate
            ),
            torn_write_rate=min(1.0, self.torn_write_rate + other.torn_write_rate),
            max_consecutive_transients=max(
                self.max_consecutive_transients, other.max_consecutive_transients
            ),
        )

    @property
    def is_noop(self) -> bool:
        return not (
            self.transient_read_rate
            or self.transient_write_rate
            or self.bit_rot_rate
            or self.lost_record_rate
            or self.torn_write_rate
        )

    def scaled(self, factor: float) -> "FaultSchedule":
        """The same fault mix at ``factor`` times the intensity."""
        if factor < 0.0:
            raise StorageError(f"scale factor must be >= 0, got {factor}")
        return replace(
            self,
            transient_read_rate=min(1.0, self.transient_read_rate * factor),
            transient_write_rate=min(1.0, self.transient_write_rate * factor),
            bit_rot_rate=min(1.0, self.bit_rot_rate * factor),
            lost_record_rate=min(1.0, self.lost_record_rate * factor),
            torn_write_rate=min(1.0, self.torn_write_rate * factor),
        )


TRANSIENT_ONLY = FaultSchedule(
    transient_read_rate=0.02, transient_write_rate=0.01
)
"""Recoverable noise only: the retry layer must absorb every fault, so
the full test suite passes unchanged under this schedule."""

MIXED = FaultSchedule(
    transient_read_rate=0.01,
    transient_write_rate=0.005,
    bit_rot_rate=0.0005,
    lost_record_rate=0.0003,
    torn_write_rate=0.002,
)
"""The chaos verb's default: transients plus unrecoverable damage that
must surface as flagged degradation, never as wrong answers."""

_PRESETS: Dict[str, FaultSchedule] = {
    "1": TRANSIENT_ONLY,
    "true": TRANSIENT_ONLY,
    "transient": TRANSIENT_ONLY,
    "mixed": MIXED,
}

_SPEC_KEYS: Dict[str, str] = {
    "read": "transient_read_rate",
    "write": "transient_write_rate",
    "rot": "bit_rot_rate",
    "lost": "lost_record_rate",
    "torn": "torn_write_rate",
    "consecutive": "max_consecutive_transients",
}


def _parse_spec(spec: str) -> Tuple[FaultSchedule, Optional[int]]:
    """Parse ``read=0.02,rot=0.001,seed=7`` into (schedule, seed)."""
    values: Dict[str, float] = {}
    seed: Optional[int] = None
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise StorageError(
                f"bad {FAULTS_ENV_VAR} component {part!r}; expected key=value "
                f"with keys {sorted(_SPEC_KEYS)} or 'seed'"
            )
        key, _, raw = part.partition("=")
        key = key.strip().lower()
        raw = raw.strip()
        if key == "seed":
            seed = int(raw)
            continue
        field = _SPEC_KEYS.get(key)
        if field is None:
            raise StorageError(
                f"unknown {FAULTS_ENV_VAR} key {key!r}; "
                f"expected one of {sorted(_SPEC_KEYS)} or 'seed'"
            )
        values[field] = (
            int(raw) if field == "max_consecutive_transients" else float(raw)
        )
    return FaultSchedule(**values), seed  # type: ignore[arg-type]


class FaultInjector:
    """Seeded, thread-safe fault decision source for one or more pagers.

    The injector owns no pager state; it only answers "does this
    operation fault, and how?".  The pager applies the consequence
    (raising, rotting the checksum, dropping the record) and the
    shared :class:`~repro.storage.stats.IOStatistics` counts what was
    detected.  The injector's own counters record what was *injected*,
    so tests can assert both sides of the ledger independently.
    """

    def __init__(self, schedule: FaultSchedule, seed: int = 7) -> None:
        self.schedule = schedule
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._fork_count = 0
        self._children: List["FaultInjector"] = []
        # (op, record_id) -> consecutive transient faults delivered.
        self._consecutive: Dict[Tuple[str, int], int] = {}
        # Injection-side ledger.
        self.transients_injected = 0
        self.rot_injected = 0
        self.lost_injected = 0
        self.torn_injected = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_env(
        cls, environ: Optional[Dict[str, str]] = None
    ) -> Optional["FaultInjector"]:
        """Build an injector from ``REPRO_FAULTS``, or ``None`` if unset.

        ``REPRO_FAULTS_SEED`` overrides the seed (default 7) for preset
        schedules; an explicit ``seed=`` in the spec wins over both.
        """
        env = os.environ if environ is None else environ
        raw = env.get(FAULTS_ENV_VAR, "").strip()
        if not raw or raw == "0":
            return None
        default_seed = int(env.get(FAULTS_SEED_ENV_VAR, "7"))
        preset = _PRESETS.get(raw.lower())
        if preset is not None:
            return cls(preset, seed=default_seed)
        schedule, seed = _parse_spec(raw)
        return cls(schedule, seed=seed if seed is not None else default_seed)

    def fork(self, label: str) -> "FaultInjector":
        """An independent child injector with the same schedule.

        The child's seed derives from the parent seed and ``label``, so
        two pagers driven by forks replay identically regardless of how
        their operations interleave.
        """
        child_seed = zlib.crc32(f"{self.seed}:{label}".encode("utf-8"))
        child = FaultInjector(self.schedule, seed=child_seed)
        with self._lock:
            self._children.append(child)
        return child

    def fork_fresh(self) -> "FaultInjector":
        """A child with an automatically numbered label (pool factories)."""
        with self._lock:
            self._fork_count += 1
            count = self._fork_count
        return self.fork(f"fork-{count}")

    # ------------------------------------------------------------------
    # decision points (called by the pager under its own operations)
    # ------------------------------------------------------------------
    def on_read(self, record_id: int) -> ReadAction:
        """Decide the fate of one record read."""
        schedule = self.schedule
        with self._lock:
            roll = self._rng.random()
            if roll < schedule.transient_read_rate:
                if self._bump_transient("read", record_id):
                    self.transients_injected += 1
                    return "transient"
            else:
                self._consecutive.pop(("read", record_id), None)
            roll = self._rng.random()
            if roll < schedule.bit_rot_rate:
                self.rot_injected += 1
                return "rot"
            if roll < schedule.bit_rot_rate + schedule.lost_record_rate:
                self.lost_injected += 1
                return "lose"
            return "ok"

    def on_write(self, record_id: int, span: int) -> WriteAction:
        """Decide the fate of one record write of ``span`` pages."""
        schedule = self.schedule
        with self._lock:
            roll = self._rng.random()
            if roll < schedule.transient_write_rate:
                if self._bump_transient("write", record_id):
                    self.transients_injected += 1
                    return "transient"
            else:
                self._consecutive.pop(("write", record_id), None)
            if span > 1 and self._rng.random() < schedule.torn_write_rate:
                self.torn_injected += 1
                return "torn"
            return "ok"

    def _bump_transient(self, op: str, record_id: int) -> bool:
        """Count a would-be transient; False once the consecutive cap is
        hit (the fault is suppressed so retries terminate)."""
        key = (op, record_id)
        seen = self._consecutive.get(key, 0)
        if seen >= self.schedule.max_consecutive_transients:
            self._consecutive.pop(key, None)
            return False
        self._consecutive[key] = seen + 1
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return (
            self.transients_injected
            + self.rot_injected
            + self.lost_injected
            + self.torn_injected
        )

    def summary(self) -> Dict[str, int]:
        """Injection-side counts for this injector and all its forks.

        Faults are injected on the per-pager forks, not the root, so a
        root-level report must fold the whole family tree back together;
        own-counter assertions use the public attributes directly.
        """
        totals = {
            "transients_injected": self.transients_injected,
            "rot_injected": self.rot_injected,
            "lost_injected": self.lost_injected,
            "torn_injected": self.torn_injected,
        }
        with self._lock:
            children = list(self._children)
        for child in children:
            for key, value in child.summary().items():
                totals[key] += value
        return totals
