"""Simulated disk substrate: pager, buffer pool, layout model, stats."""

from .buffer_pool import DEFAULT_BUFFER_BYTES, BufferPool
from .layout import (
    ENTRY_BYTES,
    NODE_HEADER_BYTES,
    keyword_count_map_bytes,
    keyword_set_bytes,
    node_bytes,
    set_pair_bytes,
)
from .pager import PAGE_SIZE, Pager
from .stats import IOSnapshot, IOStatistics

__all__ = [
    "BufferPool",
    "DEFAULT_BUFFER_BYTES",
    "Pager",
    "PAGE_SIZE",
    "IOSnapshot",
    "IOStatistics",
    "ENTRY_BYTES",
    "NODE_HEADER_BYTES",
    "node_bytes",
    "keyword_set_bytes",
    "set_pair_bytes",
    "keyword_count_map_bytes",
]
