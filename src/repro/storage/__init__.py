"""Simulated disk substrate: pager, buffer pool, layout model, stats,
fault injection, and file-integrity helpers."""

from .buffer_pool import (
    BACKOFF_SCHEDULE,
    DEFAULT_BUFFER_BYTES,
    RETRY_LIMIT,
    BufferPool,
)
from .deadline import Deadline, current_deadline, deadline_scope
from .faults import (
    FAULTS_ENV_VAR,
    FAULTS_SEED_ENV_VAR,
    MIXED,
    TRANSIENT_ONLY,
    FaultInjector,
    FaultSchedule,
)
from .integrity import (
    atomic_write_text,
    body_checksum,
    load_checked_json,
    record_stamp,
    save_checked_json,
)
from .layout import (
    ENTRY_BYTES,
    NODE_HEADER_BYTES,
    keyword_count_map_bytes,
    keyword_set_bytes,
    node_bytes,
    set_pair_bytes,
)
from .pager import PAGE_SIZE, Pager
from .stats import IOSnapshot, IOStatistics

__all__ = [
    "BufferPool",
    "DEFAULT_BUFFER_BYTES",
    "RETRY_LIMIT",
    "BACKOFF_SCHEDULE",
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "Pager",
    "PAGE_SIZE",
    "IOSnapshot",
    "IOStatistics",
    "FaultInjector",
    "FaultSchedule",
    "TRANSIENT_ONLY",
    "MIXED",
    "FAULTS_ENV_VAR",
    "FAULTS_SEED_ENV_VAR",
    "record_stamp",
    "body_checksum",
    "atomic_write_text",
    "save_checked_json",
    "load_checked_json",
    "ENTRY_BYTES",
    "NODE_HEADER_BYTES",
    "node_bytes",
    "keyword_set_bytes",
    "set_pair_bytes",
    "keyword_count_map_bytes",
]
