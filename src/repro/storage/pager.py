"""Simulated page-oriented disk.

The paper runs its indexes disk-resident with a 4 KB page size
(Section VII-A1) and reports page-access counts.  Rather than timing a
real device — which a pure-Python reproduction cannot do faithfully —
this module simulates the disk as a dictionary of *records*, each of
which occupies one or more consecutive pages, and charges every read
and write with the exact number of pages the record spans.

A record keeps its payload as a live Python object; "serialisation" is
a byte-size model (:mod:`repro.storage.layout`) rather than an actual
encoding, because only the page count affects the reproduced metric.
The keyword payloads of SetR-tree/KcR-tree nodes, which the paper
stores "sequentially on disk to reduce the number of disk seeks", are
separate records whose spans reflect their set sizes.

**Integrity and faults.**  Every record carries a checksum stamp
(:func:`repro.storage.integrity.record_stamp` — a write-sequence CRC,
for the same reason serialisation is a size model) that is verified on
every :meth:`Pager.read` and :meth:`Pager.peek`; a mismatch raises
:class:`repro.errors.CorruptRecordError`.  An optional
:class:`~repro.storage.faults.FaultInjector` is consulted on every
read and write and can fail the transfer transiently
(:class:`~repro.errors.TransientIOError`), rot or lose the record, or
tear a multi-page write — all deterministically from its seed.  With
no injector attached the fault hooks are skipped entirely, so the
fault-free I/O counts are bit-identical to the pre-fault-layer ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import (
    CorruptRecordError,
    RecordNotFoundError,
    StorageError,
    TransientIOError,
)
from .faults import FaultInjector
from .integrity import record_stamp
from .stats import IOStatistics

__all__ = ["Pager", "PAGE_SIZE"]

PAGE_SIZE = 4096
"""Default page size in bytes, matching the paper's setup."""


@dataclass
class _Record:
    payload: Any
    nbytes: int
    span: int  # number of consecutive pages occupied
    checksum: int = 0  # stamp the payload bytes should hash to
    stored_checksum: int = 0  # stamp the "disk bytes" actually hash to


class Pager:
    """A simulated disk of fixed-size pages.

    Parameters
    ----------
    page_size:
        Bytes per page; defaults to the paper's 4 KB.
    stats:
        Shared counter object.  A buffer pool wrapping this pager must
        use the same instance so hits and misses land in one place.
    faults:
        Optional :class:`~repro.storage.faults.FaultInjector` consulted
        on every read/write; ``None`` (the default) disables injection
        and all fault branches.
    """

    def __init__(
        self,
        page_size: int = PAGE_SIZE,
        stats: Optional[IOStatistics] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if page_size <= 0:
            raise StorageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStatistics()
        self.faults = faults
        self._records: Dict[int, _Record] = {}
        self._next_id = 0
        self._write_seq = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, payload: Any, nbytes: int) -> int:
        """Store ``payload`` as a new record of ``nbytes`` and return its id.

        Charges one page write per page of the record's span — index
        construction therefore shows up in the write counters, kept
        separate from the read counters the experiments report.
        """
        if nbytes < 0:
            raise StorageError(f"record size must be non-negative, got {nbytes}")
        span = max(1, math.ceil(nbytes / self.page_size))
        record_id = self._next_id
        # A transiently failed allocation consumes no id: the write
        # never reached the disk, so the caller's retry re-lands on the
        # same record id and the fault stays invisible once retried.
        self._fault_write(record_id, span)
        self._next_id += 1
        self._records[record_id] = self._stamped(record_id, payload, nbytes, span)
        self.stats.page_writes += span
        return record_id

    def update(self, record_id: int, payload: Any, nbytes: int) -> None:
        """Overwrite an existing record in place (re-spanned, re-charged)."""
        if record_id not in self._records:
            raise RecordNotFoundError(record_id)
        span = max(1, math.ceil(nbytes / self.page_size))
        self._fault_write(record_id, span)
        self._records[record_id] = self._stamped(record_id, payload, nbytes, span)
        self.stats.page_writes += span

    def free(self, record_id: int) -> None:
        """Release a record; double frees are storage faults."""
        if self._records.pop(record_id, None) is None:
            raise StorageError(f"double free or unknown record id {record_id}")

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def read(self, record_id: int) -> Any:
        """Read a record straight from "disk", charging its full span.

        Order of hazards mirrors a real device: the record must exist
        (:class:`RecordNotFoundError`), the transfer must succeed
        (:class:`TransientIOError`, retriable), and the payload must
        verify against its checksum (:class:`CorruptRecordError`,
        terminal).  Successful reads charge the span; failed transfers
        charge nothing, so fault-free runs count identically.
        """
        record = self._get(record_id)
        if self.faults is not None:
            action = self.faults.on_read(record_id)
            if action == "transient":
                self.stats.transient_faults += 1
                raise TransientIOError(
                    f"transient read fault on record {record_id}"
                )
            if action == "rot":
                record.stored_checksum = record.checksum ^ 0xFFFFFFFF
            elif action == "lose":
                del self._records[record_id]
                self.stats.lost_records += 1
                raise RecordNotFoundError(
                    record_id, f"record {record_id} lost (injected fault)"
                )
        self._verify(record_id, record)
        self.stats.page_reads += record.span
        return record.payload

    def span(self, record_id: int) -> int:
        """Number of pages the record occupies (no I/O charged)."""
        return self._get(record_id).span

    def peek(self, record_id: int) -> Any:
        """Return the payload without charging I/O.

        For assertions and debugging only; algorithms must go through
        :meth:`read` or a buffer pool so the metrics stay honest.
        Verifies the checksum (the sanitizer relies on that to spot
        corrupt records) but never consults the fault injector, so
        diagnostic walks do not perturb a seeded fault schedule.
        """
        record = self._get(record_id)
        self._verify(record_id, record)
        return record.payload

    def verify(self, record_id: int) -> bool:
        """Whether the record exists and passes checksum verification."""
        record = self._records.get(record_id)
        return record is not None and record.stored_checksum == record.checksum

    def _get(self, record_id: int) -> _Record:
        try:
            return self._records[record_id]
        except KeyError:
            raise RecordNotFoundError(record_id) from None

    def _verify(self, record_id: int, record: _Record) -> None:
        if record.stored_checksum != record.checksum:
            self.stats.checksum_failures += 1
            raise CorruptRecordError(record_id)

    def _stamped(
        self, record_id: int, payload: Any, nbytes: int, span: int
    ) -> _Record:
        """Build a freshly written record with matching checksum stamps."""
        self._write_seq += 1
        stamp = record_stamp(record_id, self._write_seq, nbytes)
        stored = stamp
        if self._torn_write:
            # The tail pages of the record never hit the disk; the
            # stored bytes hash to something else entirely.
            stored = stamp ^ 0xFFFFFFFF
            self._torn_write = False
        return _Record(
            payload=payload,
            nbytes=nbytes,
            span=span,
            checksum=stamp,
            stored_checksum=stored,
        )

    _torn_write = False  # set by _fault_write for the write in flight

    def _fault_write(self, record_id: int, span: int) -> None:
        """Consult the injector for one write; may raise or arm a tear."""
        if self.faults is None:
            return
        action = self.faults.on_write(record_id, span)
        if action == "transient":
            self.stats.transient_faults += 1
            raise TransientIOError(
                f"transient write fault on record {record_id}"
            )
        if action == "torn":
            self._torn_write = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._records

    @property
    def total_pages(self) -> int:
        """Total pages currently allocated on the simulated disk."""
        return sum(record.span for record in self._records.values())

    @property
    def total_bytes(self) -> int:
        return sum(record.nbytes for record in self._records.values())
