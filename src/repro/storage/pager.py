"""Simulated page-oriented disk.

The paper runs its indexes disk-resident with a 4 KB page size
(Section VII-A1) and reports page-access counts.  Rather than timing a
real device — which a pure-Python reproduction cannot do faithfully —
this module simulates the disk as a dictionary of *records*, each of
which occupies one or more consecutive pages, and charges every read
and write with the exact number of pages the record spans.

A record keeps its payload as a live Python object; "serialisation" is
a byte-size model (:mod:`repro.storage.layout`) rather than an actual
encoding, because only the page count affects the reproduced metric.
The keyword payloads of SetR-tree/KcR-tree nodes, which the paper
stores "sequentially on disk to reduce the number of disk seeks", are
separate records whose spans reflect their set sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import StorageError
from .stats import IOStatistics

__all__ = ["Pager", "PAGE_SIZE"]

PAGE_SIZE = 4096
"""Default page size in bytes, matching the paper's setup."""


@dataclass
class _Record:
    payload: Any
    nbytes: int
    span: int  # number of consecutive pages occupied


class Pager:
    """A simulated disk of fixed-size pages.

    Parameters
    ----------
    page_size:
        Bytes per page; defaults to the paper's 4 KB.
    stats:
        Shared counter object.  A buffer pool wrapping this pager must
        use the same instance so hits and misses land in one place.
    """

    def __init__(
        self, page_size: int = PAGE_SIZE, stats: Optional[IOStatistics] = None
    ) -> None:
        if page_size <= 0:
            raise StorageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStatistics()
        self._records: Dict[int, _Record] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, payload: Any, nbytes: int) -> int:
        """Store ``payload`` as a new record of ``nbytes`` and return its id.

        Charges one page write per page of the record's span — index
        construction therefore shows up in the write counters, kept
        separate from the read counters the experiments report.
        """
        if nbytes < 0:
            raise StorageError(f"record size must be non-negative, got {nbytes}")
        span = max(1, math.ceil(nbytes / self.page_size))
        record_id = self._next_id
        self._next_id += 1
        self._records[record_id] = _Record(payload=payload, nbytes=nbytes, span=span)
        self.stats.page_writes += span
        return record_id

    def update(self, record_id: int, payload: Any, nbytes: int) -> None:
        """Overwrite an existing record in place (re-spanned, re-charged)."""
        if record_id not in self._records:
            raise StorageError(f"unknown record id {record_id}")
        span = max(1, math.ceil(nbytes / self.page_size))
        self._records[record_id] = _Record(payload=payload, nbytes=nbytes, span=span)
        self.stats.page_writes += span

    def free(self, record_id: int) -> None:
        """Release a record; double frees are storage faults."""
        if self._records.pop(record_id, None) is None:
            raise StorageError(f"double free or unknown record id {record_id}")

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def read(self, record_id: int) -> Any:
        """Read a record straight from "disk", charging its full span."""
        record = self._get(record_id)
        self.stats.page_reads += record.span
        return record.payload

    def span(self, record_id: int) -> int:
        """Number of pages the record occupies (no I/O charged)."""
        return self._get(record_id).span

    def peek(self, record_id: int) -> Any:
        """Return the payload without charging I/O.

        For assertions and debugging only; algorithms must go through
        :meth:`read` or a buffer pool so the metrics stay honest.
        """
        return self._get(record_id).payload

    def _get(self, record_id: int) -> _Record:
        try:
            return self._records[record_id]
        except KeyError:
            raise StorageError(f"unknown record id {record_id}") from None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._records

    @property
    def total_pages(self) -> int:
        """Total pages currently allocated on the simulated disk."""
        return sum(record.span for record in self._records.values())

    @property
    def total_bytes(self) -> int:
        return sum(record.nbytes for record in self._records.values())
