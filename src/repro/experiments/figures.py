"""One function per figure of the paper's evaluation (Section VII-B).

Each ``figN`` function builds the workloads the paper describes for
that figure, runs the relevant algorithms at the requested
:class:`~repro.experiments.config.Scale`, and returns a
:class:`FigureResult` of rows ready for
:mod:`repro.experiments.reporting`.

Shared datasets and engines are cached per (kind, size) for the
duration of the process — the paper likewise builds each index once
and reuses it across the 1,000 queries of every data point.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.engine import WhyNotEngine
from ..data.synthetic import make_euro_like, make_gn_like
from ..model.objects import Dataset
from .config import PARAMETER_GRID, SCALES, Defaults, Scale
from .runner import MethodSpec, PointResult, Runner
from .workload import WorkloadGenerator

__all__ = [
    "FigureResult",
    "FIGURES",
    "run_figure",
    "table2_dataset_info",
    "fig4_vary_k0",
    "fig5_vary_keywords",
    "fig6_vary_alpha",
    "fig7_vary_lambda",
    "fig8_vary_rank",
    "fig9_vary_missing",
    "fig10_vary_threads",
    "fig11_optimizations",
    "fig12_approximate",
    "fig13_scalability",
]

DEFAULTS = Defaults()

_THREE_METHODS = (
    MethodSpec("BS", "basic"),
    MethodSpec("AdvancedBS", "advanced"),
    MethodSpec("KcRBased", "kcr"),
)


@dataclass
class FigureResult:
    """The regenerated data behind one paper figure."""

    figure: str
    title: str
    x_label: str
    points: List[PointResult]
    notes: str = ""

    def rows(self) -> List[Dict[str, object]]:
        return [point.row() for point in self.points]

    @property
    def total_mismatches(self) -> int:
        return sum(point.mismatches for point in self.points)


# ----------------------------------------------------------------------
# dataset / engine cache
# ----------------------------------------------------------------------
_CACHE: Dict[Tuple[str, int], Tuple[Dataset, WhyNotEngine]] = {}


def _engine_for(kind: str, size: int, seed: int) -> Tuple[Dataset, WhyNotEngine]:
    key = (kind, size)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    if kind == "euro":
        dataset, _ = make_euro_like(size, seed=seed)
    elif kind == "gn":
        dataset, _ = make_gn_like(size, seed=seed)
    else:
        raise ValueError(f"unknown dataset kind {kind!r}")
    engine = WhyNotEngine(dataset)
    _CACHE[key] = (dataset, engine)
    return dataset, engine


def clear_cache() -> None:
    """Drop cached datasets/engines (tests use this to bound memory)."""
    _CACHE.clear()


def _runner(scale: Scale, engine: WhyNotEngine) -> Runner:
    return Runner(engine, bs_candidate_cap=scale.bs_candidate_cap)


def _point_seed(figure: str, value: object) -> int:
    """Deterministic workload seed per (figure, x-value).

    Built on CRC32, not the builtin ``hash`` — string hashing is
    salted per process (PYTHONHASHSEED), which would silently give
    every harness run a different workload.
    """
    key = f"{figure}:{value}".encode("utf-8")
    return (DEFAULTS.seed * 31 + zlib.crc32(key)) % (2**31)


# ----------------------------------------------------------------------
# figures
# ----------------------------------------------------------------------
def fig4_vary_k0(scale: Scale) -> FigureResult:
    """Fig 4: vary ``k₀``; the missing object tracks rank ``5·k₀ + 1``."""
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    runner = _runner(scale, engine)
    points = []
    for k0 in PARAMETER_GRID["k0"]:
        if 5 * k0 + 1 >= len(dataset):
            continue  # the smoke dataset cannot host rank 501
        generator = WorkloadGenerator(dataset, seed=_point_seed("fig4", k0))
        cases = generator.generate(
            scale.n_queries,
            k0=k0,
            n_keywords=DEFAULTS.n_keywords,
            alpha=DEFAULTS.alpha,
            lam=DEFAULTS.lam,
            max_extra_keywords=scale.max_extra_keywords,
        )
        points.append(runner.run_point("k0", k0, cases, _THREE_METHODS))
    return FigureResult(
        figure="fig4",
        title="Varying k0 (missing object at rank 5*k0+1)",
        x_label="k0",
        points=points,
    )


def fig5_vary_keywords(scale: Scale) -> FigureResult:
    """Fig 5: vary the number of initial query keywords."""
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    runner = _runner(scale, engine)
    points = []
    for n_keywords in PARAMETER_GRID["n_keywords"]:
        generator = WorkloadGenerator(dataset, seed=_point_seed("fig5", n_keywords))
        cases = generator.generate(
            scale.n_queries,
            k0=DEFAULTS.k0,
            n_keywords=n_keywords,
            alpha=DEFAULTS.alpha,
            lam=DEFAULTS.lam,
            max_extra_keywords=scale.max_extra_keywords,
        )
        points.append(
            runner.run_point("n_keywords", n_keywords, cases, _THREE_METHODS)
        )
    return FigureResult(
        figure="fig5",
        title="Varying the number of initial query keywords",
        x_label="n_keywords",
        points=points,
    )


def fig6_vary_alpha(scale: Scale) -> FigureResult:
    """Fig 6: vary the spatial/textual preference α."""
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    runner = _runner(scale, engine)
    points = []
    for alpha in PARAMETER_GRID["alpha"]:
        generator = WorkloadGenerator(dataset, seed=_point_seed("fig6", alpha))
        cases = generator.generate(
            scale.n_queries,
            k0=DEFAULTS.k0,
            n_keywords=DEFAULTS.n_keywords,
            alpha=alpha,
            lam=DEFAULTS.lam,
            max_extra_keywords=scale.max_extra_keywords,
        )
        points.append(runner.run_point("alpha", alpha, cases, _THREE_METHODS))
    return FigureResult(
        figure="fig6",
        title="Varying alpha",
        x_label="alpha",
        points=points,
    )


def fig7_vary_lambda(scale: Scale) -> FigureResult:
    """Fig 7: vary the penalty preference λ."""
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    runner = _runner(scale, engine)
    points = []
    for lam in PARAMETER_GRID["lam"]:
        generator = WorkloadGenerator(dataset, seed=_point_seed("fig7", lam))
        cases = generator.generate(
            scale.n_queries,
            k0=DEFAULTS.k0,
            n_keywords=DEFAULTS.n_keywords,
            alpha=DEFAULTS.alpha,
            lam=lam,
            max_extra_keywords=scale.max_extra_keywords,
        )
        points.append(runner.run_point("lambda", lam, cases, _THREE_METHODS))
    return FigureResult(
        figure="fig7",
        title="Varying lambda",
        x_label="lambda",
        points=points,
    )


def fig8_vary_rank(scale: Scale) -> FigureResult:
    """Fig 8: vary the missing object's initial rank (top-10 query)."""
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    runner = _runner(scale, engine)
    points = []
    for rank in PARAMETER_GRID["rank_target"]:
        if rank >= len(dataset):
            continue
        generator = WorkloadGenerator(dataset, seed=_point_seed("fig8", rank))
        cases = generator.generate(
            scale.n_queries,
            k0=DEFAULTS.k0,
            n_keywords=DEFAULTS.n_keywords,
            alpha=DEFAULTS.alpha,
            lam=DEFAULTS.lam,
            rank_target=rank,
            max_extra_keywords=scale.max_extra_keywords,
        )
        points.append(runner.run_point("R(m,q)", rank, cases, _THREE_METHODS))
    return FigureResult(
        figure="fig8",
        title="Varying the missing object's initial ranking",
        x_label="R(m,q)",
        points=points,
    )


def fig9_vary_missing(scale: Scale) -> FigureResult:
    """Fig 9: vary the number of missing objects (ranks 11–51)."""
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    runner = _runner(scale, engine)
    points = []
    for n_missing in PARAMETER_GRID["n_missing"]:
        generator = WorkloadGenerator(dataset, seed=_point_seed("fig9", n_missing))
        cases = generator.generate(
            scale.n_queries,
            k0=DEFAULTS.k0,
            n_keywords=DEFAULTS.n_keywords,
            alpha=DEFAULTS.alpha,
            lam=DEFAULTS.lam,
            n_missing=n_missing,
            missing_rank_range=(DEFAULTS.k0 + 1, 5 * DEFAULTS.k0 + 1),
            max_extra_keywords=scale.max_extra_keywords,
        )
        points.append(
            runner.run_point("n_missing", n_missing, cases, _THREE_METHODS)
        )
    return FigureResult(
        figure="fig9",
        title="Varying the number of missing objects",
        x_label="n_missing",
        points=points,
    )


def fig10_vary_threads(scale: Scale) -> FigureResult:
    """Fig 10: parallel speedup (simulated makespan; see DESIGN.md)."""
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    runner = _runner(scale, engine)
    points = []
    for n_threads in PARAMETER_GRID["n_threads"]:
        generator = WorkloadGenerator(dataset, seed=_point_seed("fig10", 0))
        cases = generator.generate(
            scale.n_queries,
            k0=DEFAULTS.k0,
            n_keywords=DEFAULTS.n_keywords,
            alpha=DEFAULTS.alpha,
            lam=DEFAULTS.lam,
            max_extra_keywords=scale.max_extra_keywords,
        )
        specs = (
            MethodSpec(
                "AdvancedBS", "parallel-advanced", {"n_threads": n_threads}
            ),
            MethodSpec("KcRBased", "parallel-kcr", {"n_threads": n_threads}),
        )
        points.append(runner.run_point("n_threads", n_threads, cases, specs))
    return FigureResult(
        figure="fig10",
        title="Varying the number of threads (simulated makespan)",
        x_label="n_threads",
        points=points,
        notes="Elapsed time is the list-scheduling makespan over the "
        "measured per-candidate costs (CPython threads cannot show "
        "CPU-bound speedup); see DESIGN.md substitutions.",
    )


def fig11_optimizations(scale: Scale) -> FigureResult:
    """Fig 11: ablation of the three AdvancedBS optimizations."""
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    runner = _runner(scale, engine)
    specs = (
        MethodSpec("BS", "basic"),
        MethodSpec(
            "BS+Opt1",
            "advanced",
            {"early_stop": True, "ordering": False, "filtering": False},
        ),
        MethodSpec(
            "BS+Opt2",
            "advanced",
            {"early_stop": False, "ordering": True, "filtering": False},
        ),
        MethodSpec(
            "BS+Opt3",
            "advanced",
            {"early_stop": False, "ordering": False, "filtering": True},
        ),
        MethodSpec("AdvancedBS", "advanced"),
    )
    generator = WorkloadGenerator(dataset, seed=_point_seed("fig11", 0))
    cases = generator.generate(
        scale.n_queries,
        k0=DEFAULTS.k0,
        n_keywords=DEFAULTS.n_keywords,
        alpha=DEFAULTS.alpha,
        lam=DEFAULTS.lam,
        max_extra_keywords=scale.max_extra_keywords,
    )
    points = [runner.run_point("config", "default", cases, specs)]
    return FigureResult(
        figure="fig11",
        title="Pruning abilities of the optimizations",
        x_label="config",
        points=points,
    )


def fig12_approximate(scale: Scale) -> FigureResult:
    """Fig 12: the approximate algorithm — time and penalty vs T.

    The paper's setup is a top-10 query with 8 keywords (a candidate
    space large enough that sampling matters); penalties are compared
    against the exact algorithms.
    """
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    runner = _runner(scale, engine)
    generator = WorkloadGenerator(dataset, seed=_point_seed("fig12", 0))
    cases = generator.generate(
        scale.n_queries,
        k0=DEFAULTS.k0,
        n_keywords=8,
        alpha=DEFAULTS.alpha,
        lam=DEFAULTS.lam,
        max_extra_keywords=scale.max_extra_keywords,
    )
    points = []
    for sample_size in PARAMETER_GRID["sample_size"]:
        specs = (
            MethodSpec(
                "Approx-BS",
                "approximate",
                {"sample_size": sample_size, "strategy": "bs"},
            ),
            MethodSpec(
                "Approx-AdvancedBS",
                "approximate",
                {"sample_size": sample_size, "strategy": "advanced"},
            ),
            MethodSpec(
                "Approx-KcRBased",
                "approximate",
                {"sample_size": sample_size, "strategy": "kcr"},
            ),
        )
        points.append(runner.run_point("sample_size", sample_size, cases, specs))
    # One exact reference point (AdvancedBS + KcRBased).
    exact_specs = (
        MethodSpec("AdvancedBS", "advanced"),
        MethodSpec("KcRBased", "kcr"),
    )
    points.append(runner.run_point("sample_size", "exact", cases, exact_specs))
    return FigureResult(
        figure="fig12",
        title="Approximate algorithm: time and penalty vs sample size",
        x_label="sample_size",
        points=points,
    )


def fig13_scalability(scale: Scale) -> FigureResult:
    """Fig 13: scalability over GN-like datasets of increasing size."""
    points = []
    for size in scale.gn_sizes:
        dataset, engine = _engine_for("gn", size, DEFAULTS.seed + 1)
        runner = _runner(scale, engine)
        generator = WorkloadGenerator(dataset, seed=_point_seed("fig13", size))
        cases = generator.generate(
            scale.n_queries,
            k0=DEFAULTS.k0,
            n_keywords=DEFAULTS.n_keywords,
            alpha=DEFAULTS.alpha,
            lam=DEFAULTS.lam,
            max_extra_keywords=scale.max_extra_keywords,
        )
        points.append(runner.run_point("dataset_size", size, cases, _THREE_METHODS))
    return FigureResult(
        figure="fig13",
        title="Varying dataset size (GN-like)",
        x_label="dataset_size",
        points=points,
    )


def table2_dataset_info(scale: Scale) -> List[Dict[str, object]]:
    """Table II: statistics of the generated substitute datasets."""
    euro, _ = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    gn, _ = _engine_for("gn", scale.gn_sizes[-1], DEFAULTS.seed + 1)
    return [euro.summary(), gn.summary()]


FIGURES: Dict[str, Callable[[Scale], FigureResult]] = {
    "fig4": fig4_vary_k0,
    "fig5": fig5_vary_keywords,
    "fig6": fig6_vary_alpha,
    "fig7": fig7_vary_lambda,
    "fig8": fig8_vary_rank,
    "fig9": fig9_vary_missing,
    "fig10": fig10_vary_threads,
    "fig11": fig11_optimizations,
    "fig12": fig12_approximate,
    "fig13": fig13_scalability,
}


def run_figure(name: str, scale_name: str = "default") -> FigureResult:
    """Run one figure's experiment by name at a named scale."""
    try:
        figure = FIGURES[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; expected one of {sorted(FIGURES)}"
        ) from None
    try:
        scale = SCALES[scale_name]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale_name!r}; expected one of {sorted(SCALES)}"
        ) from None
    return figure(scale)
