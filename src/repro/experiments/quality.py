"""Result-quality profiling of optimal refinements.

The paper's evaluation measures *cost* (time, I/O).  This module
profiles the *answers themselves* — information a practitioner
deciding whether to deploy keyword adaption wants:

* how often does editing keywords strictly beat the basic "just
  enlarge k" refinement, and by how much;
* what do optimal edits look like (insertions vs deletions, Δdoc,
  residual Δk);
* how the λ preference shifts the optimum between the two axes.

All statistics come from exact (KcRBased) answers, so they describe
the true optima of Definition 2, not an algorithm's approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.engine import WhyNotEngine
from .config import SCALES, Defaults, Scale
from .figures import _engine_for, _point_seed
from .workload import WorkloadCase, WorkloadGenerator

__all__ = ["QualityProfile", "profile_quality", "quality_report_rows"]

DEFAULTS = Defaults()


@dataclass
class QualityProfile:
    """Aggregated statistics of optimal refinements at one λ."""

    lam: float
    n_cases: int = 0
    keyword_edit_wins: int = 0  # Δdoc > 0 in the optimum
    total_penalty: float = 0.0
    total_basic_penalty: float = 0.0  # λ per case
    total_delta_doc: int = 0
    total_insertions: int = 0
    total_deletions: int = 0
    total_delta_k: int = 0

    def add(self, answer, question) -> None:
        refined = answer.refined
        self.n_cases += 1
        self.total_penalty += refined.penalty
        self.total_basic_penalty += question.lam
        if refined.delta_doc > 0:
            self.keyword_edit_wins += 1
        self.total_delta_doc += refined.delta_doc
        added = refined.keywords - question.query.doc
        removed = question.query.doc - refined.keywords
        self.total_insertions += len(added)
        self.total_deletions += len(removed)
        self.total_delta_k += max(0, refined.k - question.query.k)

    @property
    def win_rate(self) -> float:
        """Fraction of questions where a keyword edit is optimal."""
        return self.keyword_edit_wins / self.n_cases if self.n_cases else 0.0

    @property
    def mean_penalty(self) -> float:
        return self.total_penalty / self.n_cases if self.n_cases else 0.0

    @property
    def mean_saving(self) -> float:
        """Mean penalty saved versus the basic refinement (λ)."""
        if not self.n_cases:
            return 0.0
        return (self.total_basic_penalty - self.total_penalty) / self.n_cases

    def row(self) -> Dict[str, object]:
        n = max(1, self.n_cases)
        return {
            "lambda": self.lam,
            "n": self.n_cases,
            "keyword_edit_win_rate": round(self.win_rate, 4),
            "mean_penalty": round(self.mean_penalty, 4),
            "mean_saving_vs_basic": round(self.mean_saving, 4),
            "mean_delta_doc": round(self.total_delta_doc / n, 3),
            "mean_insertions": round(self.total_insertions / n, 3),
            "mean_deletions": round(self.total_deletions / n, 3),
            "mean_delta_k": round(self.total_delta_k / n, 3),
        }


def profile_quality(
    scale: Scale,
    lams: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    n_cases_per_lam: int | None = None,
) -> List[QualityProfile]:
    """Profile the optimal refinements across a λ sweep."""
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    n_cases = n_cases_per_lam or max(3, scale.n_queries)
    profiles: List[QualityProfile] = []
    for lam in lams:
        generator = WorkloadGenerator(dataset, seed=_point_seed("quality", lam))
        cases = generator.generate(
            n_cases,
            k0=DEFAULTS.k0,
            n_keywords=DEFAULTS.n_keywords,
            alpha=DEFAULTS.alpha,
            lam=lam,
            max_extra_keywords=scale.max_extra_keywords,
        )
        profile = QualityProfile(lam=lam)
        for case in cases:
            engine.reset_buffers()
            answer = engine.answer(case.question, method="kcr")
            profile.add(answer, case.question)
        profiles.append(profile)
    return profiles


def quality_report_rows(profiles: Sequence[QualityProfile]) -> List[Dict[str, object]]:
    """Rows for :func:`repro.experiments.reporting.rows_to_table`."""
    return [profile.row() for profile in profiles]
