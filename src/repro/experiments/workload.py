"""Why-not query workload generation (Section VII-A3).

For each experiment data point the paper generates 1,000 random
queries and places the missing object at rank ``5·k₀ + 1`` under the
initial query (or at an explicit rank for the Fig 8 sweep; random
ranks in 11–51 for the Fig 9 multiple-missing sweep).  This module
reproduces that protocol:

1. pick a random *seed object* and issue the query from its location
   with keywords drawn from its document (topped up with
   document-frequency-weighted vocabulary terms when the document is
   short) — this yields queries that are textually meaningful, the
   regime the paper's POI queries live in;
2. find the object at the exact requested initial rank with the
   brute-force oracle (tie groups make some ranks unoccupied; those
   queries are re-drawn, mirroring "randomly generate 1,000 queries");
3. cap ``|m.doc − doc₀|`` at the scale's ``max_extra_keywords`` so the
   candidate space stays enumerable in pure Python (the substitution
   is documented in DESIGN.md) — over-long missing documents are
   re-drawn, not truncated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..model.objects import Dataset
from ..model.oracle import Oracle
from ..model.query import SpatialKeywordQuery, WhyNotQuestion

__all__ = ["WorkloadCase", "WorkloadGenerator"]


@dataclass(frozen=True)
class WorkloadCase:
    """One generated why-not question plus its provenance."""

    question: WhyNotQuestion
    initial_rank: int  # R(M, q) as verified by the oracle
    candidate_space: int  # 2^|edit universe| (approximate, pre-filter)


class WorkloadGenerator:
    """Draws why-not questions against one dataset."""

    def __init__(self, dataset: Dataset, seed: int = 0) -> None:
        self.dataset = dataset
        self.oracle = Oracle(dataset)
        self._rng = np.random.default_rng(seed)
        self._objects = dataset.objects
        # Document-frequency-weighted term sampling for query top-up.
        terms = sorted(dataset.doc_frequency)
        freqs = np.array([dataset.frequency(t) for t in terms], dtype=np.float64)
        self._terms = np.array(terms, dtype=np.int64)
        self._term_probs = freqs / freqs.sum()

    # ------------------------------------------------------------------
    def _draw_query(
        self, n_keywords: int, k0: int, alpha: float
    ) -> SpatialKeywordQuery:
        seed_obj = self._objects[int(self._rng.integers(0, len(self._objects)))]
        keywords = list(seed_obj.doc)
        self._rng.shuffle(keywords)
        keywords = keywords[:n_keywords]
        while len(keywords) < n_keywords:
            extra = int(
                self._rng.choice(self._terms, p=self._term_probs)
            )
            if extra not in keywords:
                keywords.append(extra)
        # Jitter the location slightly so the query point is not an
        # exact object location (ties in SDist would inflate rank ties).
        jitter = self._rng.normal(0.0, 0.01, size=2)
        loc = (
            float(min(1.0, max(0.0, seed_obj.loc[0] + jitter[0]))),
            float(min(1.0, max(0.0, seed_obj.loc[1] + jitter[1]))),
        )
        return SpatialKeywordQuery(loc=loc, doc=frozenset(keywords), k=k0, alpha=alpha)

    def _missing_at_rank(
        self, query: SpatialKeywordQuery, rank: int, max_extra: Optional[int]
    ) -> Optional[int]:
        """Oid of the object at exactly ``rank``, or None to re-draw."""
        try:
            oid = self.oracle.object_at_rank(query, rank)
        except ValueError:
            return None
        if max_extra is not None:
            missing_doc = self.dataset.get(oid).doc
            if len(missing_doc - query.doc) > max_extra:
                return None
        return oid

    # ------------------------------------------------------------------
    def generate(
        self,
        n_cases: int,
        *,
        k0: int = 10,
        n_keywords: int = 4,
        alpha: float = 0.5,
        lam: float = 0.5,
        rank_target: Optional[int] = None,
        n_missing: int = 1,
        missing_rank_range: Optional[Tuple[int, int]] = None,
        max_extra_keywords: Optional[int] = None,
        max_attempts_factor: int = 200,
    ) -> List[WorkloadCase]:
        """Generate ``n_cases`` why-not questions.

        ``rank_target`` defaults to the paper's ``5·k₀ + 1``.  For
        multiple missing objects pass ``missing_rank_range`` (the paper
        uses ranks 11–51); the first missing object stays pinned at an
        exact rank only in the single-missing protocol.
        """
        if rank_target is None:
            rank_target = 5 * k0 + 1
        cases: List[WorkloadCase] = []
        attempts = 0
        max_attempts = max_attempts_factor * n_cases
        while len(cases) < n_cases and attempts < max_attempts:
            attempts += 1
            query = self._draw_query(n_keywords, k0, alpha)
            if n_missing == 1 and missing_rank_range is None:
                oid = self._missing_at_rank(query, rank_target, max_extra_keywords)
                if oid is None:
                    continue
                missing: Tuple[int, ...] = (oid,)
            else:
                low, high = missing_rank_range or (k0 + 1, rank_target)
                scores = self.oracle.scores(query)
                order = np.argsort(-scores, kind="stable")
                pool = [int(self.oracle._oids[i]) for i in order[low - 1 : high]]
                if max_extra_keywords is not None:
                    pool = [
                        oid
                        for oid in pool
                        if len(self.dataset.get(oid).doc - query.doc)
                        <= max_extra_keywords
                    ]
                if len(pool) < n_missing:
                    continue
                chosen = self._rng.choice(len(pool), size=n_missing, replace=False)
                missing = tuple(pool[int(i)] for i in chosen)
            question = WhyNotQuestion(query, missing, lam=lam)
            initial_rank = self.oracle.rank_of_set(missing, query)
            if initial_rank <= k0:
                continue
            universe = len(
                query.doc
                | frozenset().union(*(self.dataset.get(m).doc for m in missing))
            )
            cases.append(
                WorkloadCase(
                    question=question,
                    initial_rank=initial_rank,
                    candidate_space=2 ** universe,
                )
            )
        if len(cases) < n_cases:
            raise RuntimeError(
                f"could only generate {len(cases)}/{n_cases} workload cases "
                f"after {attempts} attempts; relax the constraints"
            )
        return cases
