"""Ablation experiments beyond the paper's figures.

Three design choices the paper fixes without sweeping are swept here:

* **buffer** — buffer-pool size as a fraction of the index size.  The
  paper runs 4 MB against multi-hundred-MB indexes; this ablation
  shows how the I/O ranking between algorithms depends on buffer
  pressure (with an over-sized buffer all algorithms converge to the
  cold-read floor).
* **capacity** — R-tree node fanout (the paper fixes 100).  Larger
  nodes mean fewer, fatter pages: fewer seeks, weaker pruning
  granularity, larger keyword payloads per node.
* **index-baseline** — rank-determination cost of the SetR-tree and
  KcR-tree against the pre-hybrid R-tree + inverted-file baseline
  (Section II-A's reference [34]), isolating what the textual
  node payloads buy.

Each returns the same :class:`~repro.experiments.figures.FigureResult`
shape the paper figures use, so the CLI and reporting work unchanged.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from ..core.engine import WhyNotEngine
from ..errors import ensure
from ..index.inverted import InvertedFileIndex
from ..index.search import TopKSearcher
from .config import SCALES, Defaults, Scale
from .figures import FIGURES, FigureResult, _engine_for, _point_seed
from .runner import MethodAggregate, MethodSpec, PointResult, Runner
from .workload import WorkloadGenerator

__all__ = [
    "ABLATIONS",
    "run_ablation",
    "ablation_buffer",
    "ablation_capacity",
    "ablation_index_baseline",
]

DEFAULTS = Defaults()

_TWO_METHODS = (
    MethodSpec("AdvancedBS", "advanced"),
    MethodSpec("KcRBased", "kcr"),
)


def _default_cases(scale: Scale, engine: WhyNotEngine, tag: str):
    generator = WorkloadGenerator(engine.dataset, seed=_point_seed(tag, 0))
    return generator.generate(
        scale.n_queries,
        k0=DEFAULTS.k0,
        n_keywords=DEFAULTS.n_keywords,
        alpha=DEFAULTS.alpha,
        lam=DEFAULTS.lam,
        max_extra_keywords=scale.max_extra_keywords,
    )


def ablation_buffer(scale: Scale) -> FigureResult:
    """Sweep the buffer size (fraction of index pages)."""
    fractions = (0.05, 0.1, 0.25, 0.5, 1.0)
    dataset, base_engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    cases = _default_cases(scale, base_engine, "ablation-buffer")
    points: List[PointResult] = []
    for fraction in fractions:
        engine = WhyNotEngine(dataset, buffer_fraction=fraction)
        runner = Runner(engine, bs_candidate_cap=scale.bs_candidate_cap)
        points.append(
            runner.run_point("buffer_fraction", fraction, cases, _TWO_METHODS)
        )
    return FigureResult(
        figure="ablation-buffer",
        title="Buffer size as a fraction of the index (ablation)",
        x_label="buffer_fraction",
        points=points,
        notes="The paper fixes 4 MB; the I/O gap between algorithms "
        "narrows as the buffer swallows the working set.",
    )


def ablation_capacity(scale: Scale) -> FigureResult:
    """Sweep the R-tree node capacity (the paper fixes 100)."""
    capacities = (25, 50, 100, 200)
    dataset, base_engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    cases = _default_cases(scale, base_engine, "ablation-capacity")
    points: List[PointResult] = []
    for capacity in capacities:
        engine = WhyNotEngine(dataset, capacity=capacity)
        runner = Runner(engine, bs_candidate_cap=scale.bs_candidate_cap)
        points.append(
            runner.run_point("node_capacity", capacity, cases, _TWO_METHODS)
        )
    return FigureResult(
        figure="ablation-capacity",
        title="R-tree node capacity (ablation)",
        x_label="node_capacity",
        points=points,
        notes="Fatter nodes trade pruning granularity for fewer, larger "
        "page transfers.",
    )


def ablation_index_baseline(scale: Scale) -> FigureResult:
    """Rank-determination cost: SetR-tree vs KcR-tree vs inverted file.

    This is not a why-not experiment but the substrate comparison the
    related work implies: the same rank-determination searches the
    why-not algorithms issue, over the three index designs.
    """
    dataset, engine = _engine_for("euro", scale.euro_size, DEFAULTS.seed)
    cases = _default_cases(scale, engine, "ablation-baseline")
    inverted = InvertedFileIndex(dataset)

    def run_searches(label: str, rank_fn: Callable, stats, reset: Callable):
        aggregate = MethodAggregate(label)
        for case in cases:
            reset()
            started = time.perf_counter()
            missing = [dataset.get(m) for m in case.question.missing]
            before = stats.snapshot()
            result = rank_fn(case.question.query, missing)
            elapsed = time.perf_counter() - started
            delta = stats.snapshot() - before
            ensure(
                result.rank == case.initial_rank,
                "index rank search disagrees with the recorded initial rank",
            )
            aggregate.add(elapsed, delta.page_reads, 0.0)
        return aggregate

    setr_searcher = TopKSearcher(engine.setr_tree)
    kcr_searcher = TopKSearcher(engine.kcr_tree)
    methods: Dict[str, MethodAggregate] = {
        "SetR-tree": run_searches(
            "SetR-tree",
            setr_searcher.rank_of_missing,
            engine.setr_tree.stats,
            engine.setr_tree.reset_buffer,
        ),
        "KcR-tree": run_searches(
            "KcR-tree",
            kcr_searcher.rank_of_missing,
            engine.kcr_tree.stats,
            engine.kcr_tree.reset_buffer,
        ),
        "InvertedFile": run_searches(
            "InvertedFile",
            inverted.rank_of_missing,
            inverted.stats,
            inverted.reset_buffer,
        ),
    }
    point = PointResult(
        x_label="index", x_value="rank-determination", methods=methods
    )
    return FigureResult(
        figure="ablation-index-baseline",
        title="Rank determination across index designs (ablation)",
        x_label="index",
        points=[point],
        notes="The [34]-style baseline carries no textual node payloads: "
        "its node bounds barely prune, but its postings are compact.  At "
        "scaled-down sizes the compactness can win on raw pages; the "
        "hybrid payoff grows with vocabulary size and search depth.",
    )


ABLATIONS: Dict[str, Callable[[Scale], FigureResult]] = {
    "ablation-buffer": ablation_buffer,
    "ablation-capacity": ablation_capacity,
    "ablation-index-baseline": ablation_index_baseline,
}


def run_ablation(name: str, scale_name: str = "default") -> FigureResult:
    """Run one ablation by name at a named scale."""
    try:
        ablation = ABLATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown ablation {name!r}; expected one of {sorted(ABLATIONS)}"
        ) from None
    try:
        scale = SCALES[scale_name]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale_name!r}; expected one of {sorted(SCALES)}"
        ) from None
    return ablation(scale)
