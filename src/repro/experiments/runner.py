"""Experiment execution: run algorithms over workloads, aggregate metrics.

The paper reports, for every data point, the **average query time**
and the **average number of I/Os** over its generated queries
(Section VII-A1).  :class:`Runner` reproduces that protocol: each
(case, method) execution starts from a cold buffer pool, and the two
metrics are averaged per method.  The runner also cross-checks that
every *exact* method returned the same penalty on every case — the
strongest end-to-end invariant the paper implies (all three algorithms
solve the same optimisation problem exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.engine import WhyNotEngine
from ..model.objects import Dataset
from .workload import WorkloadCase

__all__ = ["MethodSpec", "MethodAggregate", "PointResult", "Runner"]

_EXACT_METHODS = {"basic", "advanced", "kcr"}


@dataclass(frozen=True)
class MethodSpec:
    """One algorithm configuration to run at a data point."""

    label: str  # display name, e.g. "AdvancedBS" or "KcRBased-P4"
    method: str  # WhyNotEngine.answer() method name
    options: Mapping[str, object] = field(default_factory=dict)

    def is_exact(self) -> bool:
        if self.method in ("approximate",):
            return False
        if self.method == "advanced":
            # Partial-optimization ablations are still exact.
            return True
        return self.method in _EXACT_METHODS or self.method.startswith("parallel")


@dataclass
class MethodAggregate:
    """Averaged metrics for one method at one data point."""

    label: str
    n_cases: int = 0
    total_time: float = 0.0
    total_ios: int = 0
    total_penalty: float = 0.0
    skipped: int = 0

    def add(self, elapsed: float, ios: int, penalty: float) -> None:
        self.n_cases += 1
        self.total_time += elapsed
        self.total_ios += ios
        self.total_penalty += penalty

    @property
    def mean_time(self) -> Optional[float]:
        return self.total_time / self.n_cases if self.n_cases else None

    @property
    def mean_ios(self) -> Optional[float]:
        return self.total_ios / self.n_cases if self.n_cases else None

    @property
    def mean_penalty(self) -> Optional[float]:
        return self.total_penalty / self.n_cases if self.n_cases else None


@dataclass
class PointResult:
    """All method aggregates at one x-axis value."""

    x_label: str
    x_value: object
    methods: Dict[str, MethodAggregate]
    mismatches: int = 0  # exact methods disagreeing on penalty (should be 0)

    def row(self) -> Dict[str, object]:
        """Flatten into a reporting row."""
        row: Dict[str, object] = {self.x_label: self.x_value}
        for label, agg in self.methods.items():
            row[f"{label}_time_s"] = agg.mean_time
            row[f"{label}_ios"] = agg.mean_ios
            row[f"{label}_penalty"] = agg.mean_penalty
        return row


class Runner:
    """Executes method specs over workload cases against one engine."""

    def __init__(
        self, engine: WhyNotEngine, *, bs_candidate_cap: Optional[int] = None
    ) -> None:
        self.engine = engine
        self.bs_candidate_cap = bs_candidate_cap

    def run_point(
        self,
        x_label: str,
        x_value: object,
        cases: Sequence[WorkloadCase],
        specs: Sequence[MethodSpec],
    ) -> PointResult:
        """Run every spec over every case; average per spec.

        The basic algorithm is skipped on cases whose candidate space
        exceeds ``bs_candidate_cap`` (pure-Python BS on a 2^16 space
        takes hours; the cap and its rationale are in DESIGN.md) —
        skips are counted, never silently dropped.
        """
        aggregates = {spec.label: MethodAggregate(spec.label) for spec in specs}
        mismatches = 0
        for case in cases:
            exact_penalties: List[Tuple[str, float]] = []
            for spec in specs:
                agg = aggregates[spec.label]
                if (
                    spec.method == "basic"
                    and self.bs_candidate_cap is not None
                    and case.candidate_space > self.bs_candidate_cap
                ):
                    agg.skipped += 1
                    continue
                self.engine.reset_buffers()
                answer = self.engine.answer(
                    case.question, method=spec.method, **dict(spec.options)
                )
                agg.add(
                    answer.elapsed_seconds,
                    answer.io.page_reads,
                    answer.refined.penalty,
                )
                if spec.is_exact():
                    exact_penalties.append((spec.label, answer.refined.penalty))
            if exact_penalties:
                reference = exact_penalties[0][1]
                if any(abs(p - reference) > 1e-9 for _, p in exact_penalties[1:]):
                    mismatches += 1
        return PointResult(
            x_label=x_label,
            x_value=x_value,
            methods=aggregates,
            mismatches=mismatches,
        )
