"""Deterministic per-figure benchmark emitters and the regression gate.

Every ``benchmarks/bench_fig*.py`` script doubles as a standalone
emitter (``python benchmarks/bench_fig04_vary_k0.py [out.json]``) that
delegates here; the CLI verb ``repro-whynot bench`` drives the same
machinery for whole batches.  Each emitter replays the figure's
workload at a fixed seed and writes ``BENCH_fig*.json`` carrying:

* **p50/p99/mean latency** per unit (one unit per figure data point);
* **buffer-pool I/O** counters of the measured query (deterministic —
  a change here is a real behavioural regression, not noise);
* **objects-scored/sec** for the leaf-scoring kernel, scalar versus
  vectorized, with the measured speedup (the ``REPRO_VECTORIZE``
  trajectory this file exists to track);
* a ``calibration_ms`` yardstick — the p50 of a fixed integer spin
  loop on the emitting machine — so :func:`compare` can gate on
  *normalized* latencies instead of raw wall clock.

:func:`compare` is the CI gate: it fails a candidate run whose
normalized p50 regresses more than ``tolerance`` (default 10%) against
a checked-in baseline, and the ``--scale`` knob inflates a candidate's
recorded latencies to prove the gate trips (the negative control).

Nothing here samples entropy at run time: datasets, workloads, and
query choices all derive from ``BENCH_SEED``, and case seeds use
CRC-32 of the case key — never ``hash()``, which is salted per
process and would unseed the workload.
"""

from __future__ import annotations

import dataclasses
import json
import os
import statistics
import sys
import time
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.engine import WhyNotEngine
from ..data.synthetic import make_euro_like, make_gn_like
from ..index.search import TopKSearcher
from ..model.query import SpatialKeywordQuery
from .workload import WorkloadCase, WorkloadGenerator

__all__ = [
    "BENCH_SEED",
    "DEFAULT_ROUNDS",
    "FIGURES",
    "EmitterHarness",
    "emit_figure",
    "emitter_main",
    "compare",
]

BENCH_SEED = 2016
DEFAULT_ROUNDS = 3
#: Figure emitters skip BS above this candidate-space size (the skip is
#: recorded in the payload's ``skipped`` list — never silent).
EMITTER_BS_CAP = 512
#: Dataset size for the substrate micro-units (matches the historical
#: ``benchmarks/bench_substrate.py`` standalone emitter).
SUBSTRATE_SIZE = 2000

_CALIBRATION_LOOPS = 200_000


def _calibration_ms() -> float:
    """p50 of a fixed integer spin loop, in milliseconds.

    A machine-speed yardstick stamped into every payload: the gate
    compares ``p50 / calibration`` ratios, which cancel the emitting
    machine's raw speed out of the comparison.
    """
    durations = []
    for _ in range(5):
        start = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_LOOPS):
            acc += i * i
        durations.append(time.perf_counter() - start)
    return round(statistics.median(durations) * 1e3, 4)


def _latency_stats(durations: Sequence[float]) -> Dict[str, Any]:
    """p50/p99 in milliseconds from raw per-round durations."""
    if len(durations) >= 2:
        cuts = statistics.quantiles(durations, n=100)
        p50, p99 = cuts[49], cuts[98]
    else:
        p50 = p99 = durations[0]
    return {
        "rounds": len(durations),
        "p50_ms": round(p50 * 1e3, 4),
        "p99_ms": round(p99 * 1e3, 4),
        "mean_ms": round(statistics.fmean(durations) * 1e3, 4),
    }


def _measure(
    unit: Callable[[], Any],
    rounds: int,
    setup: Optional[Callable[[], Any]] = None,
) -> Tuple[List[float], Any]:
    durations: List[float] = []
    result: Any = None
    for _ in range(rounds):
        if setup is not None:
            setup()
        start = time.perf_counter()
        result = unit()
        durations.append(time.perf_counter() - start)
    return durations, result


def _case_seed(key: tuple) -> int:
    """Stable per-case seed: CRC-32 of the key's repr (``hash()`` is
    salted per process and would make the workload non-reproducible)."""
    return BENCH_SEED + zlib.crc32(repr(key).encode("utf-8")) % 10_000


class EmitterHarness:
    """Engine and workload cache shared across one emit batch."""

    def __init__(self) -> None:
        self._engines: Dict[Tuple[str, int], WhyNotEngine] = {}
        self._cases: Dict[tuple, WorkloadCase] = {}

    def engine(self, kind: str = "euro", size: int = 1500) -> WhyNotEngine:
        key = (kind, size)
        if key not in self._engines:
            maker = make_euro_like if kind == "euro" else make_gn_like
            dataset, _ = maker(size, seed=BENCH_SEED)
            engine = WhyNotEngine(dataset)
            _ = engine.setr_tree  # build both indexes outside timed regions
            _ = engine.kcr_tree
            self._engines[key] = engine
        return self._engines[key]

    def case(
        self,
        tag: str,
        *,
        kind: str = "euro",
        size: int = 1500,
        **params: Any,
    ) -> WorkloadCase:
        key = (tag, kind, size, tuple(sorted(params.items())))
        if key not in self._cases:
            engine = self.engine(kind, size)
            generator = WorkloadGenerator(engine.dataset, seed=_case_seed(key))
            params.setdefault("max_extra_keywords", 4)
            self._cases[key] = generator.generate(1, **params)[0]
        return self._cases[key]


# ----------------------------------------------------------------------
# units
# ----------------------------------------------------------------------

def whynot_unit(
    harness: EmitterHarness,
    case: WorkloadCase,
    method: str,
    *,
    kind: str = "euro",
    size: int = 1500,
    rounds: int = DEFAULT_ROUNDS,
    **options: Any,
) -> Dict[str, Any]:
    """One cold-buffer why-not query, timed over ``rounds``."""
    engine = harness.engine(kind, size)
    durations, answer = _measure(
        lambda: engine.answer(case.question, method=method, **options),
        rounds,
        setup=engine.reset_buffers,
    )
    record = _latency_stats(durations)
    record["io"] = dataclasses.asdict(answer.io)
    record["penalty"] = round(answer.refined.penalty, 6)
    record["initial_rank"] = answer.initial_rank
    return record


def sharded_whynot_unit(
    harness: EmitterHarness,
    case: WorkloadCase,
    *,
    kind: str = "gn",
    size: int = 1500,
    shards: int = 4,
    mode: str = "simulate",
    method: str = "advanced",
    rounds: int = DEFAULT_ROUNDS,
    engine: Optional[WhyNotEngine] = None,
    reference: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One cold-buffer why-not query over a sharded engine.

    The recorded latency is the engine's ``answer.elapsed_seconds``,
    which follows the makespan convention of ``repro.core.parallel``:
    each shard fan-out round contributes driver time plus the *slowest
    shard's CPU busy* — the slack a round would have overlapped across
    workers is discounted whether the overlap was simulated in-process
    or dispatched to real worker processes (whose wall-clock overlap
    depends on the host's core count and is therefore not what the
    baseline pins).  Unsharded units keep plain wall time; the two
    agree on a serial host by construction.  ``reference`` (the
    matching unsharded unit) stamps a ``parity_with_unsharded`` flag —
    sharded execution is bit-identical by contract, so ``False`` here
    is a correctness bug, not noise.
    """
    owned = engine is None
    if engine is None:
        base = harness.engine(kind, size)
        engine = WhyNotEngine(base.dataset, shards=shards, shard_mode=mode)
    try:
        engine.answer(case.question, method=method)  # build outside timing
        durations = []
        answer = None
        for _ in range(rounds):
            engine.reset_buffers()
            answer = engine.answer(case.question, method=method)
            durations.append(answer.elapsed_seconds)
        record = _latency_stats(durations)
        record["io"] = dataclasses.asdict(answer.io)
        record["penalty"] = round(answer.refined.penalty, 6)
        record["initial_rank"] = answer.initial_rank
        record["shards"] = shards
        record["shard_mode"] = mode
        if reference is not None:
            record["parity_with_unsharded"] = (
                record["penalty"] == reference.get("penalty")
                and record["initial_rank"] == reference.get("initial_rank")
            )
        return record
    finally:
        if owned:
            engine.close()


def leaf_scoring_unit(
    harness: EmitterHarness,
    *,
    kind: str = "euro",
    size: int = 1500,
    rounds: int = 5,
) -> Dict[str, Any]:
    """Scalar versus vectorized leaf-scoring throughput.

    Measures the scoring *computation* in isolation — documents fetched
    and the packed block in hand — because both paths share the same
    per-entry accounted I/O by design; the kernel speedup shows up here,
    not in page-read counters.  Asserts bit-identical scores before
    timing (the parity contract of :mod:`repro.core.vectorized`).
    """
    engine = harness.engine(kind, size)
    tree = engine.setr_tree
    searcher = TopKSearcher(tree)
    obj = engine.dataset.objects[17]
    query = SpatialKeywordQuery(
        loc=obj.loc, doc=frozenset(sorted(obj.doc)[:3]), k=10, alpha=0.5
    )
    keywords = query.doc

    leaves = []
    stack = [tree.root_id]
    while stack:
        node = tree.fetch_node(stack.pop())
        if node.is_leaf:
            entries = list(node.object_entries)
            docs = [tree.fetch_doc(entry.doc_record) for entry in entries]
            leaves.append((entries, docs, tree.packed_leaf(node)))
        else:
            stack.extend(entry.child_id for entry in node.child_entries)
    n_objects = sum(len(entries) for entries, _, _ in leaves)
    query_mask = tree.vocab.encode(keywords)

    from ..core.vectorized import leaf_scores

    def scalar_pass() -> List[float]:
        out: List[float] = []
        for entries, docs, _ in leaves:
            for entry, doc in zip(entries, docs):
                out.append(
                    searcher._object_score(entry.loc, doc, query, keywords)
                )
        return out

    def vector_pass() -> List[float]:
        out: List[float] = []
        for entries, _, packed in leaves:
            out.extend(
                leaf_scores(
                    packed,
                    query.loc,
                    query.alpha,
                    query_mask,
                    len(keywords),
                    searcher.model.name,
                    tree.dataset,
                )
            )
        return out

    parity = scalar_pass() == vector_pass()  # bit-identical, not approx
    scalar_durs, _ = _measure(scalar_pass, rounds)
    vector_durs, _ = _measure(vector_pass, rounds)
    best_scalar = min(scalar_durs)
    best_vector = min(vector_durs)
    return {
        "n_objects": n_objects,
        "n_leaves": len(leaves),
        "parity": parity,
        "scalar": _latency_stats(scalar_durs),
        "vectorized": _latency_stats(vector_durs),
        "scalar_objects_per_sec": round(n_objects / best_scalar, 1),
        "vectorized_objects_per_sec": round(n_objects / best_vector, 1),
        "speedup": round(best_scalar / best_vector, 2),
    }


# ----------------------------------------------------------------------
# figure builders
# ----------------------------------------------------------------------

_Units = Dict[str, Dict[str, Any]]
_BuildResult = Tuple[_Units, Dict[str, Any], List[str]]

_METHODS = ("basic", "advanced", "kcr")


def _axis_figure(
    tag: str,
    axis: str,
    values: Sequence[Any],
    params_of: Callable[[Any], Dict[str, Any]],
    methods: Sequence[str] = _METHODS,
) -> Callable[[EmitterHarness, int], _BuildResult]:
    def build(harness: EmitterHarness, rounds: int) -> _BuildResult:
        units: _Units = {}
        skipped: List[str] = []
        for value in values:
            case = harness.case(tag, **params_of(value))
            for method in methods:
                name = f"{axis}={value}:{method}"
                if (
                    method == "basic"
                    and case.candidate_space > EMITTER_BS_CAP
                ):
                    skipped.append(
                        f"{name}: candidate space {case.candidate_space} "
                        f"> emitter BS cap {EMITTER_BS_CAP}"
                    )
                    continue
                units[name] = whynot_unit(harness, case, method, rounds=rounds)
        units["leaf_scoring"] = leaf_scoring_unit(harness)
        return units, {"kind": "euro-like", "size": 1500}, skipped

    return build


def _build_fig10(harness: EmitterHarness, rounds: int) -> _BuildResult:
    units: _Units = {}
    case = harness.case("fig10", k0=10, n_keywords=4, alpha=0.5, lam=0.5)
    for method in ("parallel-advanced", "parallel-kcr"):
        for n_threads in (1, 2, 4, 8):
            units[f"threads={n_threads}:{method}"] = whynot_unit(
                harness, case, method, rounds=rounds, n_threads=n_threads
            )
    units["leaf_scoring"] = leaf_scoring_unit(harness)
    return units, {"kind": "euro-like", "size": 1500}, []


def _build_fig11(harness: EmitterHarness, rounds: int) -> _BuildResult:
    configs = {
        "BS": {"early_stop": False, "ordering": False, "filtering": False},
        "BS+Opt1": {"early_stop": True, "ordering": False, "filtering": False},
        "BS+Opt2": {"early_stop": False, "ordering": True, "filtering": False},
        "BS+Opt3": {"early_stop": False, "ordering": False, "filtering": True},
        "AdvancedBS": {"early_stop": True, "ordering": True, "filtering": True},
    }
    units: _Units = {}
    case = harness.case("fig11", k0=10, n_keywords=4, alpha=0.5, lam=0.5)
    for label in sorted(configs):
        units[f"config={label}"] = whynot_unit(
            harness, case, "advanced", rounds=rounds, **configs[label]
        )
    units["leaf_scoring"] = leaf_scoring_unit(harness)
    return units, {"kind": "euro-like", "size": 1500}, []


def _build_fig12(harness: EmitterHarness, rounds: int) -> _BuildResult:
    units: _Units = {}
    case = harness.case(
        "fig12", k0=10, n_keywords=8, alpha=0.5, lam=0.5, max_extra_keywords=4
    )
    for strategy in ("bs", "advanced", "kcr"):
        for sample_size in (25, 50, 100, 200):
            units[f"T={sample_size}:{strategy}"] = whynot_unit(
                harness,
                case,
                "approximate",
                rounds=rounds,
                sample_size=sample_size,
                strategy=strategy,
            )
    for method in ("advanced", "kcr"):
        units[f"exact:{method}"] = whynot_unit(
            harness, case, method, rounds=rounds
        )
    units["leaf_scoring"] = leaf_scoring_unit(harness)
    return units, {"kind": "euro-like", "size": 1500}, []


def _build_fig13(harness: EmitterHarness, rounds: int) -> _BuildResult:
    sizes = (1_000, 2_000, 4_000, 8_000)
    units: _Units = {}
    skipped: List[str] = []
    for size in sizes:
        case = harness.case(
            f"fig13-{size}",
            kind="gn",
            size=size,
            k0=10,
            n_keywords=3,
            alpha=0.5,
            lam=0.5,
            max_extra_keywords=3,
        )
        for method in _METHODS:
            name = f"n={size}:{method}"
            if method == "basic" and case.candidate_space > EMITTER_BS_CAP:
                skipped.append(
                    f"{name}: candidate space {case.candidate_space} "
                    f"> emitter BS cap {EMITTER_BS_CAP}"
                )
                continue
            units[name] = whynot_unit(
                harness, case, method, kind="gn", size=size, rounds=rounds
            )
        units[f"n={size}:leaf_scoring"] = leaf_scoring_unit(
            harness, kind="gn", size=size
        )

    # Sharded series: the same workload at the largest default size,
    # fanned out over 2/4/8 spatial shards in simulate mode.  Answers
    # are bit-identical to the unsharded engine by contract, so each
    # unit carries a parity flag against the unsharded unit above.
    shard_size = sizes[-1]
    shard_case = harness.case(
        f"fig13-{shard_size}",
        kind="gn",
        size=shard_size,
        k0=10,
        n_keywords=3,
        alpha=0.5,
        lam=0.5,
        max_extra_keywords=3,
    )
    reference = units.get(f"n={shard_size}:advanced")
    for n_shards in (2, 4, 8):
        units[f"n={shard_size}:shards={n_shards}:advanced"] = (
            sharded_whynot_unit(
                harness,
                shard_case,
                kind="gn",
                size=shard_size,
                shards=n_shards,
                mode="simulate",
                rounds=rounds,
                reference=reference,
            )
        )

    meta: Dict[str, Any] = {"kind": "gn-like", "sizes": list(sizes)}
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        units.update(_fig13_full_units(rounds))
        meta["full_size"] = FULL_SWEEP_SIZE
    else:
        for name in FULL_SWEEP_UNITS:
            skipped.append(
                f"{name}: requires REPRO_BENCH_FULL=1 (streaming "
                f"{FULL_SWEEP_SIZE:,}-object build; run "
                f"`repro-whynot bench --figures fig13 --full`)"
            )
    return units, meta, skipped


#: Full-sweep knobs for the ``REPRO_BENCH_FULL=1`` / ``bench --full``
#: leg: a streaming STR bulk load at a million objects, then the
#: advanced method unsharded versus fanned out over eight shards with
#: real worker processes.
FULL_SWEEP_SIZE = 1_000_000
FULL_SWEEP_SHARDS = 8
FULL_SWEEP_UNITS = (
    f"n={FULL_SWEEP_SIZE}:unsharded:advanced",
    f"n={FULL_SWEEP_SIZE}:shards={FULL_SWEEP_SHARDS}:process:advanced",
)


def _fig13_full_units(rounds: int) -> _Units:
    """The million-object sharded-versus-unsharded pair.

    The shard set comes from the streaming loader (two passes over the
    generator stream, never the whole dataset resident in the loader),
    and the engine adopts it directly instead of rebuilding in memory.
    """
    from ..data.stream import stream_gn_like
    from ..index.sharded import ShardedIndex

    stream, config = stream_gn_like(FULL_SWEEP_SIZE, seed=BENCH_SEED)
    # A larger plan sample than the loader default: at a million
    # objects the 2k-point reservoir's quantile error skews tile sizes
    # by ~15%, and the slowest tile is the makespan — 8k points keep
    # the resident bound trivial while halving the imbalance.
    index, load_stats = ShardedIndex.build_streaming(
        stream,
        FULL_SWEEP_SHARDS,
        name=config.name,
        mode="process",
        sample_size=8_192,
        seed=BENCH_SEED,
    )
    dataset = index.dataset
    generator = WorkloadGenerator(
        dataset, seed=_case_seed(("fig13-full", FULL_SWEEP_SIZE))
    )
    case = generator.generate(
        1, k0=10, n_keywords=3, alpha=0.5, lam=0.5, max_extra_keywords=3
    )[0]

    units: _Units = {}
    # Second-long units amortise extra rounds into noise-free medians;
    # the smoke figures keep the caller's (cheaper) round count.
    rounds = max(rounds, 5)
    unsharded = WhyNotEngine(dataset)
    _ = unsharded.setr_tree  # build the index outside timed regions
    durations, answer = _measure(
        lambda: unsharded.answer(case.question, method="advanced"),
        rounds,
        setup=unsharded.reset_buffers,
    )
    record = _latency_stats(durations)
    record["io"] = dataclasses.asdict(answer.io)
    record["penalty"] = round(answer.refined.penalty, 6)
    record["initial_rank"] = answer.initial_rank
    units[FULL_SWEEP_UNITS[0]] = record

    engine = WhyNotEngine(
        dataset, shards=FULL_SWEEP_SHARDS, shard_mode="process"
    )
    engine.attach_sharded_index(index)
    sharded = sharded_whynot_unit(
        EmitterHarness(),  # unused: engine is supplied
        case,
        shards=FULL_SWEEP_SHARDS,
        mode="process",
        rounds=rounds,
        engine=engine,
        reference=record,
    )
    sharded["speedup_vs_unsharded"] = round(
        record["p50_ms"] / sharded["p50_ms"], 2
    )
    sharded["load_stats"] = dataclasses.asdict(load_stats)
    units[FULL_SWEEP_UNITS[1]] = sharded
    engine.close()
    return units


def _build_substrate(harness: EmitterHarness, rounds: int) -> _BuildResult:
    """Substrate micro-units plus the analyzer's own runtime.

    Not a paper figure: these track the building blocks whose costs the
    figures aggregate (index construction, top-k search, rank
    determination, the MaxDom/MinDom bound estimators) — and the
    static-analysis substrate itself.  The ``analyze:*`` units time
    :func:`repro.analysis.run_analysis` over the shipped package, so a
    super-linear blowup in the CFG/dataflow layer trips the same
    normalized-p50 gate that guards the query benchmarks.
    """
    import repro as _pkg

    from ..analysis import run_analysis
    from ..core.bounds import NodeTextStats, max_dom, min_dom
    from ..index.kcr_tree import KcRTree
    from ..index.setr_tree import SetRTree

    units: _Units = {}
    dataset, _ = make_euro_like(SUBSTRATE_SIZE, seed=BENCH_SEED)

    durations, setr = _measure(
        lambda: SetRTree(dataset, capacity=100), rounds
    )
    units["build_setr_tree"] = _latency_stats(durations)
    durations, kcr = _measure(lambda: KcRTree(dataset, capacity=100), rounds)
    units["build_kcr_tree"] = _latency_stats(durations)

    obj = dataset.objects[17]
    query = SpatialKeywordQuery(
        loc=obj.loc, doc=frozenset(sorted(obj.doc)[:3]), k=10, alpha=0.5
    )
    missing = [dataset.objects[900]]
    searcher = TopKSearcher(setr)
    kcr_searcher = TopKSearcher(kcr)

    def io_unit(name: str, unit: Callable[[], Any], tree: Any) -> None:
        """Cold-buffer timing plus the batch's deterministic I/O delta."""
        before = tree.stats.snapshot()
        durs, _ = _measure(unit, max(rounds, 10), setup=tree.reset_buffer)
        record = _latency_stats(durs)
        record["io"] = dataclasses.asdict(tree.stats.snapshot() - before)
        units[name] = record

    io_unit("top_k_setr", lambda: searcher.top_k(query), setr)
    io_unit("top_k_kcr", lambda: kcr_searcher.top_k(query), kcr)
    io_unit(
        "rank_determination",
        lambda: searcher.rank_of_missing(query, missing),
        setr,
    )

    cnt, kcm = kcr.fetch_kcm(kcr.root_summary_record)
    stats = NodeTextStats(cnt, kcm)
    keywords = frozenset(sorted(kcm)[:4])
    durations, _ = _measure(
        lambda: max_dom(stats, keywords, 0.3), max(rounds, 50)
    )
    units["max_dom_root_scale"] = _latency_stats(durations)
    durations, _ = _measure(
        lambda: min_dom(stats, keywords, 0.7), max(rounds, 50)
    )
    units["min_dom_root_scale"] = _latency_stats(durations)

    src = str(Path(_pkg.__file__).resolve().parent)
    for label, rulesets in (
        ("analyze:flow", ("flow",)),
        ("analyze:taint+lifetime", ("taint", "lifetime")),
        ("analyze:all", ("lint", "flow", "taint", "lifetime")),
    ):
        reports: List[Any] = []
        durations, _ = _measure(
            lambda: reports.append(run_analysis([src], rulesets=rulesets)),
            rounds,
        )
        record = _latency_stats(durations)
        # Deterministic shape counters (gated exactly, like I/O would
        # be): a drifting function count means the analyzer silently
        # started skipping or double-counting code.
        record["functions"] = reports[-1].n_functions
        record["modules"] = reports[-1].n_modules
        record["blocking"] = reports[-1].blocking_count
        units[label] = record

    meta = {
        "kind": "euro-like",
        "size": SUBSTRATE_SIZE,
        "analyzer_source": "src/repro",
    }
    return units, meta, []


def _build_serve(harness: EmitterHarness, rounds: int) -> _BuildResult:
    """Serving-layer load figure (the ``serve-bench`` verb's payload).

    Three units, all per the makespan-discount convention — service
    costs are measured ``process_time`` busy and the fleet overlaps
    them in virtual time, so no unit depends on wall clock or core
    count:

    * ``steady-mixed`` — 1200 requests from 200 users at load factor
      0.65 over 4 virtual workers; p50/p99 of virtual latency.
    * ``overload-burst-4x`` — 4x the admission capacity arriving at
      one instant; the shed counts are exact arithmetic of the class
      limits and the p50 covers the accepted requests.
    * ``dialogue-cache-reuse`` — a 4-round refinement dialogue through
      a real server, with the session layer sharing one dominator
      cache; ``cache_hits`` is gate-stable (deterministic), busy is
      normalized like every other latency.
    """
    from ..serve.bench import run_dialogue, run_serve_bench

    units: _Units = {}
    engine = harness.engine("euro", 1500)
    generator = WorkloadGenerator(
        engine.dataset, seed=_case_seed(("serve", "euro", 1500))
    )
    cases = generator.generate(
        3, k0=5, n_keywords=3, max_extra_keywords=4
    )

    def sim_stats(report: Dict[str, Any]) -> Dict[str, Any]:
        record = _latency_stats(
            [value / 1e3 for value in report["latencies_ms"]]
        )
        record["shed"] = report["shed"]
        record["timeouts"] = report["timeouts"]
        record["completed"] = report["completed"]
        record["workers"] = report["workers"]
        record["service_ms"] = report["service_ms"]
        return record

    steady = run_serve_bench(
        engine,
        cases,
        n_requests=1200,
        users=200,
        seed=BENCH_SEED,
        workers=4,
        load_factor=0.65,
    )
    units["steady-mixed"] = sim_stats(steady)

    burst = run_serve_bench(
        engine,
        cases,
        n_requests=320,  # 4x the default 64+16 admission capacity
        users=40,
        seed=BENCH_SEED,
        workers=4,
        burst=True,
    )
    units["overload-burst-4x"] = sim_stats(burst)

    reused = run_dialogue(engine, cases[0].question, rounds=4)
    fresh = run_dialogue(
        engine, cases[0].question, rounds=4, reuse_cache=False
    )
    record = _latency_stats([value / 1e3 for value in reused["busy_ms"]])
    record["cache_hits"] = reused["cache_hits"]
    record["fresh_cache_hits"] = fresh["cache_hits"]
    record["statuses"] = sorted(set(reused["statuses"]))
    units["dialogue-cache-reuse"] = record

    meta = {"kind": "euro-like", "size": 1500, "simulated_users": 200}
    return units, meta, []


FIGURES: Dict[str, Callable[[EmitterHarness, int], _BuildResult]] = {
    "substrate": _build_substrate,
    "serve": _build_serve,
    "fig04": _axis_figure(
        "fig4",
        "k0",
        (3, 10, 30, 100),
        lambda k0: dict(k0=k0, n_keywords=4, alpha=0.5, lam=0.5),
    ),
    "fig05": _axis_figure(
        "fig5",
        "keywords",
        (2, 4, 6, 8),
        lambda n: dict(k0=10, n_keywords=n, alpha=0.5, lam=0.5),
    ),
    "fig06": _axis_figure(
        "fig6",
        "alpha",
        (0.1, 0.3, 0.5, 0.7, 0.9),
        lambda a: dict(k0=10, n_keywords=4, alpha=a, lam=0.5),
    ),
    "fig07": _axis_figure(
        "fig7",
        "lambda",
        (0.1, 0.3, 0.5, 0.7, 0.9),
        lambda lam: dict(k0=10, n_keywords=4, alpha=0.5, lam=lam),
    ),
    "fig08": _axis_figure(
        "fig8",
        "rank",
        (31, 51, 101, 151, 201),
        lambda r: dict(k0=10, n_keywords=4, alpha=0.5, lam=0.5, rank_target=r),
    ),
    "fig09": _axis_figure(
        "fig9",
        "missing",
        (1, 2, 3, 4),
        lambda m: dict(
            k0=10,
            n_keywords=4,
            alpha=0.5,
            lam=0.5,
            n_missing=m,
            missing_rank_range=(11, 51),
            max_extra_keywords=3,
        ),
    ),
    "fig10": _build_fig10,
    "fig11": _build_fig11,
    "fig12": _build_fig12,
    "fig13": _build_fig13,
}


# ----------------------------------------------------------------------
# emit + gate
# ----------------------------------------------------------------------

_LATENCY_KEYS = ("p50_ms", "p99_ms", "mean_ms")


def _scale_record(record: Dict[str, Any], scale: float) -> None:
    for key in _LATENCY_KEYS:
        if key in record:
            record[key] = round(record[key] * scale, 4)
    for nested in ("scalar", "vectorized"):
        if nested in record:
            _scale_record(record[nested], scale)
    for key in ("scalar_objects_per_sec", "vectorized_objects_per_sec"):
        if key in record:
            record[key] = round(record[key] / scale, 1)


def emit_figure(
    name: str,
    path: Optional[Union[str, Path]] = None,
    *,
    rounds: int = DEFAULT_ROUNDS,
    scale: float = 1.0,
    harness: Optional[EmitterHarness] = None,
    write: bool = True,
) -> Dict[str, Any]:
    """Run one figure's emitter and (optionally) write its JSON.

    ``scale != 1.0`` inflates every recorded latency after measurement —
    the negative control that proves the regression gate trips.  Scaled
    payloads are stamped ``"scaled_by"`` so they can never masquerade as
    honest baselines.
    """
    builder = FIGURES.get(name)
    if builder is None:
        raise KeyError(
            f"unknown figure {name!r}; expected one of {sorted(FIGURES)}"
        )
    if harness is None:
        harness = EmitterHarness()
    # Calibration brackets the unit runs: the host's effective speed
    # drifts over the minutes a figure takes (shared-CPU container),
    # and a single instantaneous sample mis-normalizes every unit
    # measured at a different speed.  The mean of a before and an
    # after sample tracks the speed the units actually saw.
    cal_before = _calibration_ms()
    units, dataset_meta, skipped = builder(harness, rounds)
    if scale != 1.0:
        for record in units.values():
            _scale_record(record, scale)
    payload: Dict[str, Any] = {
        "benchmark": name,
        "seed": BENCH_SEED,
        "calibration_ms": round((cal_before + _calibration_ms()) / 2.0, 4),
        "dataset": dataset_meta,
        "units": units,
        "skipped": skipped,
    }
    if scale != 1.0:
        payload["scaled_by"] = scale
    if write:
        out = Path(path) if path is not None else Path(f"BENCH_{name}.json")
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


def _gate_records(
    unit_name: str, unit: Dict[str, Any]
) -> List[Tuple[str, Dict[str, Any]]]:
    """The latency records a unit contributes to the regression gate."""
    if "p50_ms" in unit:
        return [(unit_name, unit)]
    records = []
    if "vectorized" in unit:
        records.append((f"{unit_name}.vectorized", unit["vectorized"]))
    return records


#: Per-unit gating only applies above this baseline p50: shorter units
#: are timer-noise-dominated and contribute to the median tier only.
#: Empirically, same-machine honest re-runs jitter 5-15 ms units by up
#: to ~1.4x, so only genuinely long units are gated individually.
UNIT_GATE_FLOOR_MS = 50.0
#: Per-unit slack multiplier over ``tolerance`` (single units are
#: noisier than the cross-unit median: honest same-machine re-runs on
#: shared hardware jitter even 100 ms units by ~1.4x, so this tier only
#: catches egregious single-unit blowups; broad slowdowns are the
#: figure-median tier's job).
UNIT_GATE_SLACK = 6.0


def compare(
    candidate: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.10,
) -> List[str]:
    """Regression failures of ``candidate`` against ``baseline``.

    Latencies are compared as ``p50 / calibration_ms`` ratios so the
    emitting machines' raw speeds cancel.  Three tiers:

    * **figure-level** — the *median* normalized-p50 ratio across all
      shared units must stay within ``1 + tolerance`` (>10% by
      default).  Robust to single-unit timer noise while tripping on
      any broad slowdown — this is the tier the ``--scale`` negative
      control demonstrates;
    * **unit-level** — units whose baseline p50 is at least
      :data:`UNIT_GATE_FLOOR_MS` (long enough to time stably) must
      individually stay within ``1 + UNIT_GATE_SLACK·tolerance``;
    * **I/O counters** — must match exactly: the workload is seeded and
      storage accounting is deterministic, so a changed page-read count
      is a behavioural regression regardless of timing.

    Units new in the candidate pass.  Units missing from it fail —
    unless the candidate's ``skipped`` list declares the omission (an
    entry prefixed with the unit name), which covers emitter-declared
    gates like the BS candidate-space cap and the ``REPRO_BENCH_FULL``
    million-object sweep.
    """
    failures: List[str] = []
    cal_base = float(baseline.get("calibration_ms") or 1.0)
    cal_cand = float(candidate.get("calibration_ms") or 1.0)
    unit_slack = 1.0 + UNIT_GATE_SLACK * tolerance
    cand_skipped = tuple(candidate.get("skipped", ()))
    ratios: List[float] = []
    for unit_name, base_unit in sorted(baseline.get("units", {}).items()):
        cand_unit = candidate.get("units", {}).get(unit_name)
        if cand_unit is None:
            if any(
                entry.startswith(f"{unit_name}:") for entry in cand_skipped
            ):
                continue  # declared, gated omission — not a regression
            failures.append(f"{unit_name}: unit missing from candidate run")
            continue
        base_records = dict(_gate_records(unit_name, base_unit))
        cand_records = dict(_gate_records(unit_name, cand_unit))
        for record_name, base_record in base_records.items():
            cand_record = cand_records.get(record_name)
            if cand_record is None:
                continue
            base_norm = base_record["p50_ms"] / cal_base
            cand_norm = cand_record["p50_ms"] / cal_cand
            if base_norm <= 0.0:
                continue
            ratio = cand_norm / base_norm
            ratios.append(ratio)
            if (
                base_record["p50_ms"] >= UNIT_GATE_FLOOR_MS
                and ratio > unit_slack
            ):
                failures.append(
                    f"{record_name}: normalized p50 regressed {ratio:.2f}x "
                    f"(candidate {cand_record['p50_ms']}ms, baseline "
                    f"{base_record['p50_ms']}ms, unit gate "
                    f"+{UNIT_GATE_SLACK * tolerance:.0%})"
                )
        if "io" in base_unit and base_unit["io"] != cand_unit.get("io"):
            failures.append(
                f"{unit_name}: I/O counters diverge from baseline "
                f"(deterministic workload — this is a behavioural change)"
            )
    if ratios:
        median_ratio = statistics.median(ratios)
        if median_ratio > 1.0 + tolerance:
            failures.append(
                f"figure median: normalized p50 regressed "
                f"{median_ratio:.2f}x across {len(ratios)} unit(s), "
                f"gate +{tolerance:.0%}"
            )
    return failures


def emitter_main(name: str, argv: Optional[Sequence[str]] = None) -> str:
    """Standalone entry shared by the ``bench_fig*.py`` scripts.

    Emits the figure's JSON and returns the one-line summary for the
    script to print (library code never prints).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    out = argv[0] if argv else f"BENCH_{name}.json"
    payload = emit_figure(name, out)
    return (
        f"wrote {out}: {len(payload['units'])} unit(s), seed {BENCH_SEED}, "
        f"{len(payload['skipped'])} skipped"
    )
