"""Experiment harness: configs, workloads, runners, per-figure drivers."""

from .ablations import ABLATIONS, run_ablation
from .charts import bar_chart, figure_chart
from .config import PARAMETER_GRID, SCALES, Defaults, Scale
from .figures import FIGURES, FigureResult, run_figure, table2_dataset_info
from .reporting import figure_to_markdown, figure_to_text, rows_to_table
from .runner import MethodAggregate, MethodSpec, PointResult, Runner
from .workload import WorkloadCase, WorkloadGenerator

__all__ = [
    "ABLATIONS",
    "run_ablation",
    "bar_chart",
    "figure_chart",
    "PARAMETER_GRID",
    "SCALES",
    "Defaults",
    "Scale",
    "FIGURES",
    "FigureResult",
    "run_figure",
    "table2_dataset_info",
    "figure_to_markdown",
    "figure_to_text",
    "rows_to_table",
    "MethodAggregate",
    "MethodSpec",
    "PointResult",
    "Runner",
    "WorkloadCase",
    "WorkloadGenerator",
]
