"""Dependency-free terminal charts for experiment results.

The harness regenerates the *data* behind the paper's figures; this
module draws it, so ``repro-whynot experiment fig4 --chart`` shows the
comparative shape (who wins, how curves bend) without leaving the
terminal or installing a plotting stack.

Bars are horizontal, one block-row per (x-value, series) pair, scaled
to the widest value; a log scale keeps BS's order-of-magnitude lead
from flattening everyone else into invisibility — the same reason the
paper plots Figs 4–9 on log axes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .figures import FigureResult

__all__ = ["bar_chart", "figure_chart"]

_BAR = "█"
_HALF = "▌"


def bar_chart(
    series: Sequence[Tuple[str, float]],
    *,
    width: int = 46,
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """Render labelled values as horizontal bars.

    ``series`` is ``[(label, value), ...]``; non-finite or negative
    values render as ``-``.  With ``log_scale`` bars are proportional
    to ``log10`` of the value (floored one decade below the minimum
    positive value so the smallest bar stays visible).
    """
    drawable = [
        (label, value)
        for label, value in series
        if value is not None and math.isfinite(value) and value >= 0.0
    ]
    label_width = max((len(label) for label, _ in series), default=0)
    lines: List[str] = []
    if drawable:
        positives = [v for _, v in drawable if v > 0]
        if log_scale and positives:
            floor = math.log10(min(positives)) - 1.0
            span = max(math.log10(max(positives)) - floor, 1e-9)

            def scale(value: float) -> float:
                if value <= 0:
                    return 0.0
                return (math.log10(value) - floor) / span
        else:
            top = max((v for _, v in drawable), default=1.0) or 1.0

            def scale(value: float) -> float:
                return value / top

    for label, value in series:
        padded = label.ljust(label_width)
        if value is None or not math.isfinite(value) or value < 0.0:
            lines.append(f"{padded} | -")
            continue
        filled = scale(value) * width
        blocks = _BAR * int(filled)
        if filled - int(filled) >= 0.5:
            blocks += _HALF
        rendered_value = f"{value:,.4g}{unit}"
        lines.append(f"{padded} | {blocks} {rendered_value}")
    return "\n".join(lines)


def figure_chart(
    result: FigureResult,
    metric: str = "time",
    *,
    width: int = 46,
) -> str:
    """Chart one metric (``time``/``ios``/``penalty``) of a figure result.

    Rows are grouped by x-value with one bar per algorithm, so the
    cross-algorithm comparison the paper's figures make is immediate.
    Time and I/O render on a log scale (matching the paper's axes).
    """
    attribute = {
        "time": "mean_time",
        "ios": "mean_ios",
        "penalty": "mean_penalty",
    }.get(metric)
    if attribute is None:
        raise ValueError(
            f"unknown metric {metric!r}; expected time, ios, or penalty"
        )
    unit = {"time": " s", "ios": " pages", "penalty": ""}[metric]
    series: List[Tuple[str, Optional[float]]] = []
    for point in result.points:
        for label, aggregate in point.methods.items():
            series.append(
                (
                    f"{result.x_label}={point.x_value} {label}",
                    getattr(aggregate, attribute),
                )
            )
    header = f"-- {result.figure}: mean {metric} --"
    chart = bar_chart(
        series, width=width, log_scale=metric in ("time", "ios"), unit=unit
    )
    return f"{header}\n{chart}"
