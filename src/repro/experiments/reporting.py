"""Rendering experiment results as text tables and Markdown.

The harness prints the same rows the paper plots: one line per x-axis
value, one column pair (time, I/O) per algorithm.  Markdown output
feeds EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .figures import FigureResult

__all__ = ["format_value", "figure_to_text", "figure_to_markdown", "rows_to_table"]


def format_value(value: object) -> str:
    """Human-friendly scalar formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def rows_to_table(
    rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None
) -> str:
    """Plain-text aligned table from a list of row dicts."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_value(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r))
        for r in rendered
    )
    return f"{header}\n{separator}\n{body}"


def _figure_columns(result: FigureResult) -> List[str]:
    columns = [result.x_label]
    seen = set()
    for point in result.points:
        for label in point.methods:
            if label not in seen:
                seen.add(label)
                columns.extend(
                    (f"{label}_time_s", f"{label}_ios", f"{label}_penalty")
                )
    return columns


def figure_to_text(result: FigureResult) -> str:
    """Render one figure's result as an aligned text table."""
    lines = [f"== {result.figure}: {result.title} =="]
    if result.notes:
        lines.append(f"   note: {result.notes}")
    lines.append(rows_to_table(result.rows(), _figure_columns(result)))
    if result.total_mismatches:
        lines.append(
            f"WARNING: {result.total_mismatches} case(s) where exact "
            "algorithms disagreed on penalty"
        )
    return "\n".join(lines)


def figure_to_markdown(result: FigureResult) -> str:
    """Render one figure's result as a Markdown table."""
    columns = _figure_columns(result)
    rows = result.rows()
    lines = [f"### {result.figure}: {result.title}", ""]
    if result.notes:
        lines.extend([f"*{result.notes}*", ""])
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(format_value(row.get(col)) for col in columns) + " |"
        )
    if result.total_mismatches:
        lines.extend(
            ["", f"**WARNING:** {result.total_mismatches} exact-method mismatches"]
        )
    return "\n".join(lines)
