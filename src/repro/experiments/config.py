"""Experiment configuration (the paper's Table III, plus scaling).

The paper's defaults (bold in Table III): ``k₀ = 10``, 4 query
keywords, ``α = 0.5``, missing object at rank ``5·k₀ + 1 = 51``,
``λ = 0.5``, one missing object, EURO dataset, 1,000 queries per data
point.

Pure Python is ~two orders of magnitude slower than the paper's Java
setup, so each experiment runs at a configurable :class:`Scale`:

* ``smoke`` — minutes-long CI scale: tiny datasets, one query per
  point, reduced sweeps.  Used by the pytest-benchmark suite.
* ``default`` — the scale the committed EXPERIMENTS.md numbers use.
* ``full`` — closest to the paper; expect hours for the BS sweeps.

Scaling shrinks dataset cardinality and query counts, never the
algorithms or parameter semantics; the paper's own Fig 13 shows cost
linear in cardinality, so comparative shapes survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

__all__ = ["Scale", "SCALES", "Defaults", "PARAMETER_GRID"]


@dataclass(frozen=True)
class Scale:
    """Knobs that trade fidelity for runtime."""

    name: str
    euro_size: int  # EURO-like dataset cardinality
    gn_sizes: Tuple[int, ...]  # Fig 13 scalability sweep cardinalities
    n_queries: int  # queries averaged per data point
    max_extra_keywords: int  # cap on |m.doc - doc0| in generated workloads
    bs_candidate_cap: int  # skip BS on points whose space exceeds this


SCALES: Dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        euro_size=600,
        gn_sizes=(400, 800, 1600),
        n_queries=1,
        max_extra_keywords=4,
        bs_candidate_cap=2_000,
    ),
    "default": Scale(
        name="default",
        euro_size=4_000,
        gn_sizes=(2_000, 4_000, 8_000, 16_000),
        n_queries=3,
        max_extra_keywords=5,
        bs_candidate_cap=10_000,
    ),
    "full": Scale(
        name="full",
        euro_size=20_000,
        gn_sizes=(5_000, 10_000, 20_000, 40_000),
        n_queries=10,
        max_extra_keywords=6,
        bs_candidate_cap=100_000,
    ),
}


@dataclass(frozen=True)
class Defaults:
    """The bold column of Table III."""

    k0: int = 10
    n_keywords: int = 4
    alpha: float = 0.5
    lam: float = 0.5
    rank_multiplier: int = 5  # missing object at rank 5*k0 + 1
    n_missing: int = 1
    seed: int = 2016  # the paper's year; fixed for reproducibility

    @property
    def rank_target(self) -> int:
        return self.rank_multiplier * self.k0 + 1


PARAMETER_GRID: Dict[str, Sequence] = {
    "k0": (3, 10, 30, 100),
    "n_keywords": (2, 4, 6, 8),
    "alpha": (0.1, 0.3, 0.5, 0.7, 0.9),
    "rank_target": (31, 51, 101, 151, 201),
    "lam": (0.1, 0.3, 0.5, 0.7, 0.9),
    "n_missing": (1, 2, 3, 4),
    "n_threads": (1, 2, 4, 8),
    "sample_size": (100, 200, 400, 800),
}
"""Table III sweeps (plus the Fig 10 / Fig 12 x-axes)."""
