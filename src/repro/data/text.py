"""Keyword normalisation for real-world text.

The synthetic generators emit clean ``term_N`` tokens, but real POI
listings ("Joe's Café & Grill — 24hr!") need normalisation before the
set-based similarity models are meaningful.  :func:`normalize_keywords`
applies the standard pipeline — casefold, strip punctuation/diacritics'
ASCII leftovers, drop stopwords and degenerate tokens — and is what the
flat-file loader users should run their raw descriptions through.

The stopword list is the short English core; pass ``stopwords=()`` to
keep everything, or your own set for other languages.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Sequence, Tuple

__all__ = ["DEFAULT_STOPWORDS", "tokenize", "normalize_keywords"]

DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    """a an and are as at be by for from has in is it of on or that the to
    with near best great good new""".split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercase alphanumeric tokens of ``text``, in order.

    Punctuation, symbols and whitespace are separators; digits are
    kept (house numbers and "24hr" carry meaning in POI data).
    """
    return _TOKEN_RE.findall(text.casefold())


def normalize_keywords(
    text_or_tokens: "str | Iterable[str]",
    *,
    stopwords: Iterable[str] = DEFAULT_STOPWORDS,
    min_length: int = 2,
) -> Tuple[str, ...]:
    """Normalise raw text (or pre-split tokens) into keyword terms.

    Returns the deduplicated keywords in first-occurrence order —
    callers feed them to :meth:`Vocabulary.encode`, which builds the
    set, but the stable order keeps vocabulary ids deterministic
    across runs.

    >>> normalize_keywords("Joe's Café & Grill — the BEST 24hr diner!")
    ('joe', 'caf', 'grill', '24hr', 'diner')
    """
    if isinstance(text_or_tokens, str):
        tokens = tokenize(text_or_tokens)
    else:
        tokens = [t for raw in text_or_tokens for t in tokenize(raw)]
    stop = frozenset(stopwords)
    seen = []
    for token in tokens:
        if len(token) < min_length and not token.isdigit():
            continue
        if token in stop:
            continue
        if token not in seen:
            seen.append(token)
    return tuple(seen)
