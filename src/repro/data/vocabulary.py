"""Keyword interning.

All library internals work on integer keyword ids; the vocabulary maps
between human-readable words and ids at the API boundary.  Interning
keeps the hot-path set algebra (Jaccard numerators/denominators,
keyword-count map lookups) on small ints and makes documents hashable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence

__all__ = ["Vocabulary"]


class Vocabulary:
    """A bidirectional word <-> id map with stable, dense ids."""

    def __init__(self, words: Iterable[str] = ()) -> None:
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = []
        for word in words:
            self.intern(word)

    def intern(self, word: str) -> int:
        """Return the id of ``word``, assigning the next id if new."""
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        new_id = len(self._id_to_word)
        self._word_to_id[word] = new_id
        self._id_to_word.append(word)
        return new_id

    def id_of(self, word: str) -> int:
        """Id of a known word; raises ``KeyError`` for unknown words."""
        return self._word_to_id[word]

    def word_of(self, term_id: int) -> str:
        """Word for a known id; raises ``IndexError`` for unknown ids."""
        if term_id < 0:
            raise IndexError(f"negative keyword id {term_id}")
        return self._id_to_word[term_id]

    def encode(self, words: Iterable[str]) -> FrozenSet[int]:
        """Intern a document: words in, keyword-id set out."""
        return frozenset(self.intern(word) for word in words)

    def decode(self, term_ids: Iterable[int]) -> List[str]:
        """Human-readable words for a keyword-id set, sorted for display."""
        return sorted(self.word_of(t) for t in term_ids)

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __contains__(self, word: object) -> bool:
        return word in self._word_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_word)

    @property
    def words(self) -> Sequence[str]:
        return tuple(self._id_to_word)
