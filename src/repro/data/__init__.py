"""Datasets: vocabulary interning, synthetic generators, persistence."""

from .flatfile import load_flatfile, save_flatfile
from .io import load_dataset, save_dataset
from .text import DEFAULT_STOPWORDS, normalize_keywords, tokenize
from .synthetic import (
    SyntheticConfig,
    generate,
    make_euro_like,
    make_gn_like,
    make_micro_example,
)
from .stream import (
    ObjectStream,
    object_stream,
    stream_euro_like,
    stream_gn_like,
    synthetic_stream,
)
from .vocabulary import Vocabulary

__all__ = [
    "Vocabulary",
    "SyntheticConfig",
    "generate",
    "make_euro_like",
    "make_gn_like",
    "make_micro_example",
    "save_dataset",
    "load_dataset",
    "load_flatfile",
    "save_flatfile",
    "DEFAULT_STOPWORDS",
    "normalize_keywords",
    "tokenize",
    "ObjectStream",
    "object_stream",
    "stream_euro_like",
    "stream_gn_like",
    "synthetic_stream",
]
