"""Loader/writer for the flat text format spatial-keyword datasets use.

The EURO and GN datasets circulate in the spatial-keyword community as
whitespace-separated flat files, one object per line::

    <id> <longitude> <latitude> <keyword> [<keyword> ...]

Users who hold the real datasets can load them with
:func:`load_flatfile` and run every experiment in this repository
against them instead of the synthetic stand-ins; :func:`save_flatfile`
writes the same format (useful for exporting synthetic datasets to
other systems).

Coordinates are min-max normalised into the unit square on load so the
rest of the library's distance normalisation (``diagonal = sqrt(2)``)
applies unchanged; pass ``normalize=False`` to keep raw coordinates
(the diagonal is then computed from the data extent).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..errors import DatasetError
from ..model.objects import Dataset, SpatialObject
from .vocabulary import Vocabulary

__all__ = ["load_flatfile", "save_flatfile"]


def load_flatfile(
    path: Union[str, Path],
    *,
    name: Optional[str] = None,
    normalize: bool = True,
    vocabulary: Optional[Vocabulary] = None,
) -> Tuple[Dataset, Vocabulary]:
    """Parse ``<id> <x> <y> <keywords...>`` lines into a dataset.

    Blank lines and ``#`` comments are skipped.  Objects with no
    keywords are rejected — every algorithm here needs documents.
    """
    path = Path(path)
    if vocabulary is None:
        vocabulary = Vocabulary()
    raw: List[Tuple[int, float, float, List[str]]] = []
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        fields = stripped.split()
        if len(fields) < 4:
            raise DatasetError(
                f"{path}:{line_number}: expected '<id> <x> <y> <keywords...>', "
                f"got {len(fields)} field(s)"
            )
        try:
            oid = int(fields[0])
            x = float(fields[1])
            y = float(fields[2])
        except ValueError as exc:
            raise DatasetError(f"{path}:{line_number}: {exc}") from None
        raw.append((oid, x, y, fields[3:]))
    if not raw:
        raise DatasetError(f"{path}: no objects found")

    if normalize:
        min_x = min(r[1] for r in raw)
        max_x = max(r[1] for r in raw)
        min_y = min(r[2] for r in raw)
        max_y = max(r[2] for r in raw)
        span_x = (max_x - min_x) or 1.0
        span_y = (max_y - min_y) or 1.0

        def _scale(x: float, y: float) -> Tuple[float, float]:
            return ((x - min_x) / span_x, (y - min_y) / span_y)

        diagonal: Optional[float] = math.sqrt(2.0)
    else:

        def _scale(x: float, y: float) -> Tuple[float, float]:
            return (x, y)

        diagonal = None

    objects = [
        SpatialObject(oid=oid, loc=_scale(x, y), doc=vocabulary.encode(words))
        for oid, x, y, words in raw
    ]
    dataset = Dataset(objects, diagonal=diagonal, name=name or path.stem)
    return dataset, vocabulary


def save_flatfile(
    dataset: Dataset, vocabulary: Vocabulary, path: Union[str, Path]
) -> None:
    """Write a dataset in the flat ``<id> <x> <y> <keywords...>`` format."""
    lines = [
        f"# {dataset.name}: {len(dataset)} objects, "
        f"{dataset.vocabulary_size} distinct words"
    ]
    for obj in dataset:
        words = " ".join(sorted(vocabulary.word_of(t) for t in obj.doc))
        lines.append(f"{obj.oid} {obj.loc[0]:.8f} {obj.loc[1]:.8f} {words}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
