"""Dataset persistence.

Datasets save to a simple JSON document (vocabulary + objects) so
benchmark workloads are reproducible across runs and machines without
regenerating.  JSON keeps the format inspectable; the files involved
are small (tens of thousands of objects), so compactness is not worth
an opaque binary format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

from ..model.objects import Dataset, SpatialObject
from .vocabulary import Vocabulary

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(
    dataset: Dataset, vocabulary: Vocabulary, path: Union[str, Path]
) -> None:
    """Write a dataset and its vocabulary to ``path`` as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "diagonal": dataset.diagonal,
        "vocabulary": list(vocabulary.words),
        "objects": [
            {"oid": obj.oid, "loc": list(obj.loc), "doc": sorted(obj.doc)}
            for obj in dataset
        ],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_dataset(path: Union[str, Path]) -> Tuple[Dataset, Vocabulary]:
    """Load a dataset previously written by :func:`save_dataset`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version {version!r}")
    vocabulary = Vocabulary(payload["vocabulary"])
    objects = [
        SpatialObject(
            oid=entry["oid"],
            loc=(float(entry["loc"][0]), float(entry["loc"][1])),
            doc=frozenset(int(t) for t in entry["doc"]),
        )
        for entry in payload["objects"]
    ]
    dataset = Dataset(
        objects, diagonal=float(payload["diagonal"]), name=payload["name"]
    )
    return dataset, vocabulary
