"""Dataset persistence.

Datasets save to a simple JSON document (vocabulary + objects) so
benchmark workloads are reproducible across runs and machines without
regenerating.  JSON keeps the format inspectable; the files involved
are small (tens of thousands of objects), so compactness is not worth
an opaque binary format.

Saves are **crash-safe and checksummed**
(:mod:`repro.storage.integrity`): the writer lands the bytes in a
temporary file and atomically replaces the destination, and format
version 2 embeds a CRC-32 of the canonical body.  The loader verifies
the checksum, still accepts version-1 files (written before
checksumming existed), and turns truncation / corruption / unknown
versions into :class:`repro.errors.PersistenceError` with a recovery
hint.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple, Union

from ..model.objects import Dataset, SpatialObject
from ..storage.integrity import load_checked_json, save_checked_json
from .vocabulary import Vocabulary

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)  # v1 predates checksums; still loadable
_CHECKSUM_REQUIRED_FROM = 2


def save_dataset(
    dataset: Dataset, vocabulary: Vocabulary, path: Union[str, Path]
) -> None:
    """Atomically write a dataset and its vocabulary to ``path``.

    The file carries ``format_version`` and a CRC-32 ``checksum``; the
    replace is atomic, so a crash mid-save leaves the previous complete
    file rather than a torn one.
    """
    body = {
        "name": dataset.name,
        "diagonal": dataset.diagonal,
        "vocabulary": list(vocabulary.words),
        "objects": [
            {"oid": obj.oid, "loc": list(obj.loc), "doc": sorted(obj.doc)}
            for obj in dataset
        ],
    }
    save_checked_json(path, body, version=_FORMAT_VERSION)


def load_dataset(path: Union[str, Path]) -> Tuple[Dataset, Vocabulary]:
    """Load a dataset previously written by :func:`save_dataset`.

    Raises :class:`repro.errors.PersistenceError` if the file is
    missing, truncated, fails checksum verification, or declares a
    format version this build does not read.
    """
    payload = load_checked_json(
        path,
        kind="dataset",
        supported_versions=_SUPPORTED_VERSIONS,
        checksum_required_from=_CHECKSUM_REQUIRED_FROM,
    )
    vocabulary = Vocabulary(payload["vocabulary"])
    objects = [
        SpatialObject(
            oid=entry["oid"],
            loc=(float(entry["loc"][0]), float(entry["loc"][1])),
            doc=frozenset(int(t) for t in entry["doc"]),
        )
        for entry in payload["objects"]
    ]
    dataset = Dataset(
        objects, diagonal=float(payload["diagonal"]), name=payload["name"]
    )
    return dataset, vocabulary
