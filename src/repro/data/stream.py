"""Bounded-memory dataset streams for the sharded bulk loader.

The streaming STR loader (:mod:`repro.index.sharded`) consumes object
*iterators* instead of materialised datasets, so scalability sweeps can
build shard sets far larger than working memory.  This module provides
the iterator side:

* :func:`synthetic_stream` — generate a synthetic dataset in fixed-size
  batches, each batch drawn from its own derived RNG so the stream is
  deterministic, restartable, and never holds more than one batch.
* :func:`stream_euro_like` / :func:`stream_gn_like` — the EURO/GN
  substitute configurations of :mod:`repro.data.synthetic` as streams.
* :func:`object_stream` — adapt an in-memory :class:`Dataset`.

A stream here is a zero-argument callable returning a fresh iterator
(the loader makes two passes: one to sample a tile plan, one to route
objects into tiles), mirroring how an on-disk dataset would be scanned
twice.

Note that a batched stream is *not* item-for-item identical to the
one-shot :func:`repro.data.synthetic.generate` draw of the same size —
batch RNGs are derived per batch.  It is drawn from the same
distribution (same cluster/Zipf knobs, same pinned vocabulary size), and
the sharded scalability benchmarks use the stream as the single source
of truth for both the sharded and unsharded series, so comparisons stay
apples-to-apples.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, Optional, Tuple

import numpy as np

from ..model.objects import Dataset, SpatialObject
from .synthetic import (
    SyntheticConfig,
    _SPACE_DIAGONAL,
    _sample_documents,
    _sample_locations,
)

__all__ = [
    "ObjectStream",
    "SPACE_DIAGONAL",
    "object_stream",
    "stream_euro_like",
    "stream_gn_like",
    "synthetic_stream",
]

#: Diagonal of the generation space (the unit square); every stream
#: batch is drawn from this space, so shard datasets normalise with it.
SPACE_DIAGONAL = _SPACE_DIAGONAL

#: A restartable object source: call it to get a fresh iterator.
ObjectStream = Callable[[], Iterator[SpatialObject]]

DEFAULT_BATCH_SIZE = 20_000


class _PinnedVocabConfig(SyntheticConfig):
    """A batch-sized config that keeps the full stream's vocabulary.

    ``SyntheticConfig.vocab_size`` scales with ``n_objects``; a batch
    drawn with a batch-sized vocabulary would have the wrong keyword
    skew, so the stream pins every batch to the whole stream's size.
    """

    def __init__(self, base: SyntheticConfig, batch_n: int) -> None:
        super().__init__(
            n_objects=batch_n,
            vocab_per_object=base.vocab_per_object,
            doc_length_range=base.doc_length_range,
            cluster_fraction=base.cluster_fraction,
            n_clusters=base.n_clusters,
            cluster_spread=base.cluster_spread,
            zipf_exponent=base.zipf_exponent,
            name=base.name,
        )
        self._pinned_vocab_size = base.vocab_size

    @property
    def vocab_size(self) -> int:
        return self._pinned_vocab_size


def synthetic_stream(
    config: SyntheticConfig,
    seed: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[SpatialObject]:
    """Yield ``config.n_objects`` synthetic objects, one batch at a time.

    Each batch uses an RNG seeded with ``(seed, batch_index)`` so any
    prefix of the stream is reproducible without generating the rest,
    and restarting the stream replays it exactly.  Object ids are the
    global stream positions, matching :func:`repro.data.synthetic
    .generate`'s id convention.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    total = config.n_objects
    base_seed = 0 if seed is None else int(seed)
    offset = 0
    for batch_index in range(math.ceil(total / batch_size)):
        batch_n = min(batch_size, total - offset)
        rng = np.random.default_rng((base_seed, batch_index))
        batch_config = _PinnedVocabConfig(config, batch_n)
        locations = _sample_locations(batch_config, rng)
        documents = _sample_documents(batch_config, rng)
        for i, ((x, y), doc) in enumerate(zip(locations, documents)):
            yield SpatialObject(
                oid=offset + i, loc=(float(x), float(y)), doc=doc
            )
        offset += batch_n


def _config_stream(
    config: SyntheticConfig,
    seed: Optional[int],
    batch_size: int,
) -> ObjectStream:
    return lambda: synthetic_stream(config, seed=seed, batch_size=batch_size)


def stream_euro_like(
    n_objects: int,
    seed: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Tuple[ObjectStream, SyntheticConfig]:
    """EURO-substitute stream (same knobs as ``make_euro_like``)."""
    config = SyntheticConfig(
        n_objects=n_objects,
        vocab_per_object=0.22,
        doc_length_range=(2, 8),
        cluster_fraction=0.85,
        n_clusters=max(8, n_objects // 300),
        cluster_spread=0.02,
        zipf_exponent=1.0,
        name="euro-like-stream",
    )
    return _config_stream(config, seed, batch_size), config


def stream_gn_like(
    n_objects: int,
    seed: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Tuple[ObjectStream, SyntheticConfig]:
    """GN-substitute stream (same knobs as ``make_gn_like``)."""
    config = SyntheticConfig(
        n_objects=n_objects,
        vocab_per_object=0.12,
        doc_length_range=(1, 4),
        cluster_fraction=0.30,
        n_clusters=max(8, n_objects // 800),
        cluster_spread=0.04,
        zipf_exponent=1.1,
        name="gn-like-stream",
    )
    return _config_stream(config, seed, batch_size), config


def object_stream(source: Iterable[SpatialObject]) -> ObjectStream:
    """Adapt an in-memory dataset (or any re-iterable) to a stream."""
    if isinstance(source, Dataset):
        return lambda: iter(source.objects)
    materialised = tuple(source)
    return lambda: iter(materialised)
