"""Synthetic substitutes for the paper's EURO and GN datasets.

The paper evaluates on two real datasets that are not redistributable
here:

* **EURO** — 162,033 points of interest in Europe with 35,315 distinct
  words (ATMs, hotels, stores; allstays.com).
* **GN** — 1,868,821 geographic objects with 222,407 distinct words
  (US Board on Geographic Names).

The why-not algorithms are sensitive to three dataset properties, all
of which the generators below preserve:

1. **Spatial clustering** — POIs cluster around cities; GN names are
   closer to uniform.  We mix Gaussian clusters with a uniform
   background at dataset-specific ratios.
2. **Keyword skew** — document frequencies follow a Zipf law (a few
   words like "hotel" are everywhere, most words are rare).  The
   particularity ordering (Eqn 7) and the KcR-tree count maps both key
   off this skew.
3. **Document length** — POI documents run 2–8 terms, gazetteer
   entries 1–4.

Cardinalities default far below the originals so a pure-Python run
finishes; the paper's own scalability experiment (Fig 13) shows cost
linear in cardinality, so trends are preserved.  Vocabulary size
scales with ``n`` at the originals' words-per-object ratios.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..model.geometry import Point
from ..model.objects import Dataset, SpatialObject
from .vocabulary import Vocabulary

__all__ = [
    "SyntheticConfig",
    "generate",
    "make_euro_like",
    "make_gn_like",
    "make_micro_example",
]

_SPACE_DIAGONAL = math.sqrt(2.0)  # generation space is the unit square


class SyntheticConfig:
    """Knobs for :func:`generate`.

    Kept as an explicit class (not a dict) so experiment configs are
    self-documenting and typo-proof.
    """

    def __init__(
        self,
        n_objects: int,
        vocab_per_object: float,
        doc_length_range: Tuple[int, int],
        cluster_fraction: float,
        n_clusters: int,
        cluster_spread: float,
        zipf_exponent: float = 1.0,
        name: str = "synthetic",
    ) -> None:
        if n_objects <= 0:
            raise ValueError("n_objects must be positive")
        lo, hi = doc_length_range
        if not 1 <= lo <= hi:
            raise ValueError(f"bad doc length range {doc_length_range}")
        if not 0.0 <= cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must lie in [0, 1]")
        self.n_objects = n_objects
        self.vocab_per_object = vocab_per_object
        self.doc_length_range = doc_length_range
        self.cluster_fraction = cluster_fraction
        self.n_clusters = max(1, n_clusters)
        self.cluster_spread = cluster_spread
        self.zipf_exponent = zipf_exponent
        self.name = name

    @property
    def vocab_size(self) -> int:
        # At least enough distinct words to fill the longest document.
        floor = self.doc_length_range[1] + 1
        return max(floor, int(self.n_objects * self.vocab_per_object))


def _zipf_probabilities(vocab_size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, exponent)
    return weights / weights.sum()


def _sample_locations(
    config: SyntheticConfig, rng: np.random.Generator
) -> np.ndarray:
    """Points in the unit square: Gaussian clusters + uniform background."""
    n = config.n_objects
    n_clustered = int(round(n * config.cluster_fraction))
    n_uniform = n - n_clustered
    parts: List[np.ndarray] = []
    if n_clustered:
        centers = rng.uniform(0.05, 0.95, size=(config.n_clusters, 2))
        assignment = rng.integers(0, config.n_clusters, size=n_clustered)
        offsets = rng.normal(0.0, config.cluster_spread, size=(n_clustered, 2))
        parts.append(centers[assignment] + offsets)
    if n_uniform:
        parts.append(rng.uniform(0.0, 1.0, size=(n_uniform, 2)))
    locations = np.concatenate(parts) if len(parts) > 1 else parts[0]
    np.clip(locations, 0.0, 1.0, out=locations)
    rng.shuffle(locations, axis=0)
    return locations


def _sample_documents(
    config: SyntheticConfig, rng: np.random.Generator
) -> List[frozenset]:
    """Zipf-skewed documents with per-object lengths in the config range.

    Draws with replacement in one big vectorised batch, then dedupes
    per object; the Zipf head makes duplicates common, so we oversample
    3x and top up from the uniform tail in the rare short cases.
    """
    vocab_size = config.vocab_size
    probabilities = _zipf_probabilities(vocab_size, config.zipf_exponent)
    lo, hi = config.doc_length_range
    lengths = rng.integers(lo, hi + 1, size=config.n_objects)
    draws_per_object = 3 * hi
    raw = rng.choice(
        vocab_size,
        size=(config.n_objects, draws_per_object),
        replace=True,
        p=probabilities,
    )
    documents: List[frozenset] = []
    for row, target in zip(raw, lengths):
        terms = list(dict.fromkeys(int(t) for t in row))[: int(target)]
        while len(terms) < target:
            extra = int(rng.integers(0, vocab_size))
            if extra not in terms:
                terms.append(extra)
        documents.append(frozenset(terms))
    return documents


def generate(
    config: SyntheticConfig,
    seed: Optional[int] = None,
    vocabulary: Optional[Vocabulary] = None,
) -> Tuple[Dataset, Vocabulary]:
    """Generate a dataset and its vocabulary from a config.

    The dataset's normalisation diagonal is pinned to the generation
    space's diagonal (``sqrt(2)`` for the unit square) so different
    cardinalities drawn from the same space rank identically — needed
    by the Fig 13 scalability sweep.
    """
    rng = np.random.default_rng(seed)
    locations = _sample_locations(config, rng)
    documents = _sample_documents(config, rng)
    if vocabulary is None:
        vocabulary = Vocabulary(f"term_{i}" for i in range(config.vocab_size))
    objects = [
        SpatialObject(oid=i, loc=(float(x), float(y)), doc=doc)
        for i, ((x, y), doc) in enumerate(zip(locations, documents))
    ]
    dataset = Dataset(objects, diagonal=_SPACE_DIAGONAL, name=config.name)
    return dataset, vocabulary


def make_euro_like(
    n_objects: int = 20_000, seed: Optional[int] = None
) -> Tuple[Dataset, Vocabulary]:
    """EURO substitute: clustered POIs, 2–8 term documents.

    EURO has 35,315 words over 162,033 objects (~0.22 words/object);
    we keep that ratio.  POIs concentrate around cities, so 85% of
    points come from Gaussian clusters.
    """
    config = SyntheticConfig(
        n_objects=n_objects,
        vocab_per_object=0.22,
        doc_length_range=(2, 8),
        cluster_fraction=0.85,
        n_clusters=max(8, n_objects // 300),
        cluster_spread=0.02,
        zipf_exponent=1.0,
        name="euro-like",
    )
    return generate(config, seed=seed)


def make_gn_like(
    n_objects: int = 40_000, seed: Optional[int] = None
) -> Tuple[Dataset, Vocabulary]:
    """GN substitute: near-uniform gazetteer points, 1–4 term documents.

    GN has 222,407 words over 1,868,821 objects (~0.12 words/object).
    Geographic names spread far more evenly than POIs, so only 30% of
    points cluster.
    """
    config = SyntheticConfig(
        n_objects=n_objects,
        vocab_per_object=0.12,
        doc_length_range=(1, 4),
        cluster_fraction=0.30,
        n_clusters=max(8, n_objects // 800),
        cluster_spread=0.04,
        zipf_exponent=1.1,
        name="gn-like",
    )
    return generate(config, seed=seed)


def make_micro_example() -> Tuple[Dataset, Vocabulary]:
    """The four-object example of the paper's Fig 1 / Table I.

    Locations are chosen so that ``1 − SDist`` matches Fig 1(b) for the
    query at ``loc = (0, 0)`` with the dataset diagonal forced to 1:
    ``m: 0.5``, ``o1: 0.2``, ``o2: 0.9``, ``o3: 0.4``.
    """
    vocabulary = Vocabulary(["t1", "t2", "t3"])
    t1, t2, t3 = (vocabulary.id_of(w) for w in ("t1", "t2", "t3"))
    objects = [
        SpatialObject(oid=0, loc=(0.5, 0.0), doc=frozenset({t1, t2, t3})),  # m
        SpatialObject(oid=1, loc=(0.8, 0.0), doc=frozenset({t1})),  # o1
        SpatialObject(oid=2, loc=(0.1, 0.0), doc=frozenset({t1, t3})),  # o2
        SpatialObject(oid=3, loc=(0.6, 0.0), doc=frozenset({t1, t2})),  # o3
    ]
    dataset = Dataset(objects, diagonal=1.0, name="fig1-example")
    return dataset, vocabulary
